"""Tests for the experiment service: single-flight, executor, HTTP server.

The executor tests use tiny picklable job classes defined at module level
(the pool uses the ``spawn`` start method, so workers unpickle jobs by
importing this module).  The HTTP tests run a real :class:`ExperimentServer`
on a loopback socket in a background thread and drive it with
``http.client`` — the same wire path ``curl`` takes in the CI e2e job.
"""

import asyncio
import http.client
import json
import os
import threading
import time

import pytest

from repro import SimulationConfig, default_layout
from repro.exec import plan_jobs
from repro.exec.cache import DirectoryCache
from repro.scheduling import RescqScheduler
from repro.service import (
    AdmissionError,
    ExperimentServer,
    ExperimentService,
    JobFailedError,
    JobTimeoutError,
    ServiceExecutor,
    SingleFlight,
    WorkerCrashError,
)
from repro.workloads import qft_circuit

FAST = SimulationConfig(mst_period=10, mst_latency=10)


class EchoJob:
    """Returns its payload (picklable: workers import this module)."""

    def __init__(self, value):
        self.value = value

    def run(self):
        return self.value


class SleepJob:
    def __init__(self, seconds):
        self.seconds = seconds

    def run(self):
        time.sleep(self.seconds)
        return "slept"


class CrashJob:
    """Kills its worker process without reporting back."""

    def run(self):
        os._exit(3)


class FailJob:
    """Raises inside the worker (a deterministic job error, never retried)."""

    def run(self):
        raise ValueError("boom")

    def fingerprint(self):
        return "e" * 64


class SlowFailJob:
    """Fails after a delay, leaving a window for followers to pile on."""

    def run(self):
        time.sleep(1.0)
        raise ValueError("slow boom")

    def fingerprint(self):
        return "d" * 64


def make_jobs(seeds=1, mst_period=10):
    circuit = qft_circuit(4)
    config = FAST.with_updates(mst_period=mst_period)
    return plan_jobs([RescqScheduler()], circuit, config,
                     default_layout(circuit), seeds)


class TestSingleFlight:
    def test_leader_then_followers_share_one_future(self):
        flight = SingleFlight()
        leader, future = flight.begin("k")
        assert leader
        again, same = flight.begin("k")
        assert not again
        assert same is future
        assert "k" in flight and len(flight) == 1

    def test_finish_delivers_and_retires(self):
        flight = SingleFlight()
        _, future = flight.begin("k")
        flight.finish("k", 42)
        assert future.result(timeout=1) == 42
        assert "k" not in flight
        leader, _ = flight.begin("k")
        assert leader  # a finished flight can be restarted

    def test_fail_propagates_to_followers(self):
        flight = SingleFlight()
        flight.begin("k")
        _, follower = flight.begin("k")
        flight.fail("k", RuntimeError("dead"))
        with pytest.raises(RuntimeError, match="dead"):
            follower.result(timeout=1)
        assert len(flight) == 0


@pytest.fixture(scope="module")
def pool():
    executor = ServiceExecutor(max_workers=2, poll_interval=0.01)
    executor.start()
    yield executor
    executor.shutdown(drain=True)


class TestServiceExecutor:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ServiceExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ServiceExecutor(job_timeout=0)
        with pytest.raises(ValueError):
            ServiceExecutor(max_attempts=0)

    def test_run_jobs_preserves_order(self, pool):
        values = list(range(10))
        assert pool.run_jobs([EchoJob(v) for v in values]) == values

    def test_work_stealing_outruns_head_of_line_blocking(self, pool):
        """A slow job on one worker must not strand queued fast jobs."""
        slow = pool.submit(SleepJob(2.0))
        fast = [pool.submit(EchoJob(i)) for i in range(4)]
        assert [f.result(timeout=10) for f in fast] == list(range(4))
        assert not slow.done() or slow.result() == "slept"
        assert slow.result(timeout=10) == "slept"

    def test_job_exception_is_not_retried(self, pool):
        with pytest.raises(JobFailedError, match="ValueError: boom"):
            pool.submit(FailJob()).result(timeout=10)

    def test_real_simulation_jobs_round_trip(self, pool):
        jobs = make_jobs(seeds=2)
        results = pool.run_jobs(jobs)
        assert [r.seed for r in results] == [0, 1]
        assert results == [job.run() for job in jobs]

    def test_timeout_kills_the_job_not_the_pool(self):
        executor = ServiceExecutor(max_workers=1, job_timeout=0.5,
                                   poll_interval=0.01)
        try:
            with pytest.raises(JobTimeoutError, match="0.5s per-job timeout"):
                executor.submit(SleepJob(30)).result(timeout=30)
            # The replacement worker keeps serving.
            assert executor.submit(EchoJob("alive")).result(timeout=30) == \
                "alive"
        finally:
            executor.shutdown(drain=False)

    def test_worker_crash_fails_after_retry_budget(self):
        executor = ServiceExecutor(max_workers=1, max_attempts=2,
                                   poll_interval=0.01)
        try:
            with pytest.raises(WorkerCrashError, match="2 attempt"):
                executor.submit(CrashJob()).result(timeout=30)
            assert executor.submit(EchoJob("alive")).result(timeout=30) == \
                "alive"
        finally:
            executor.shutdown(drain=False)

    def test_shutdown_drains_pending_work(self):
        executor = ServiceExecutor(max_workers=2, poll_interval=0.01)
        futures = [executor.submit(EchoJob(i)) for i in range(6)]
        executor.shutdown(drain=True)
        assert [f.result(timeout=1) for f in futures] == list(range(6))
        with pytest.raises(RuntimeError, match="shut down"):
            executor.submit(EchoJob(0))

    def test_context_manager_drains(self):
        with ServiceExecutor(max_workers=1, poll_interval=0.01) as executor:
            future = executor.submit(EchoJob("x"))
        assert future.result(timeout=1) == "x"

    def test_describe_names_worker_count(self, pool):
        assert pool.describe() == "service[2]"


class TestExperimentService:
    def test_executed_then_cached(self, pool, tmp_path):
        service = ExperimentService(executor=pool,
                                    cache=DirectoryCache(tmp_path))
        job = make_jobs(mst_period=11)[0]
        first = service.resolve(job)
        assert first.source == "executed"
        result = first.future.result(timeout=60)
        assert result == job.run()
        # The done-callback published to the cache before resolving.
        second = service.resolve(job)
        assert second.source == "cache"
        assert second.future.result(timeout=1) == result
        assert service.stats.executed == 1
        assert service.stats.cache_hits == 1

    def test_inflight_duplicate_is_deduped(self, pool, tmp_path):
        service = ExperimentService(executor=pool,
                                    cache=DirectoryCache(tmp_path))
        job = make_jobs(mst_period=12)[0]
        key = job.fingerprint()
        leader, flight = service.singleflight.begin(key)
        assert leader
        resolved = service.resolve(job)
        assert resolved.source == "deduped"
        assert resolved.future is flight
        service.singleflight.finish(key, "sentinel")
        assert resolved.future.result(timeout=1) == "sentinel"
        assert service.stats.deduped == 1

    def test_submit_plan_counts_and_order(self, pool, tmp_path):
        service = ExperimentService(executor=pool,
                                    cache=DirectoryCache(tmp_path))
        jobs = make_jobs(seeds=3, mst_period=13)
        resolved = service.submit_plan(jobs)
        assert [item.job.seed for item in resolved] == [0, 1, 2]
        for item in resolved:
            item.future.result(timeout=60)
        counts = service.counts_for(resolved)
        assert counts == {"jobs": 3, "executed": 3, "cache_hits": 0,
                          "deduped": 0}
        replay = service.submit_plan(make_jobs(seeds=3, mst_period=13))
        assert service.counts_for(replay) == {
            "jobs": 3, "executed": 0, "cache_hits": 3, "deduped": 0}

    def test_job_failure_counts_as_error(self, pool):
        service = ExperimentService(executor=pool, cache=None)
        resolved = service.resolve(FailJob())
        with pytest.raises(JobFailedError):
            resolved.future.result(timeout=30)
        deadline = time.monotonic() + 5
        while service.stats.errors == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.stats.errors == 1
        assert len(service.singleflight) == 0

    def test_snapshot_shape(self, pool, tmp_path):
        service = ExperimentService(executor=pool,
                                    cache=DirectoryCache(tmp_path))
        snapshot = service.snapshot()
        assert set(snapshot) == {"requests", "jobs", "executed", "cache_hits",
                                 "deduped", "errors", "rejected",
                                 "in_flight", "queue_depth", "max_pending",
                                 "cache"}
        assert snapshot["cache"] == {"hits": 0, "misses": 0, "stores": 0,
                                     "connect_errors": 0,
                                     "corrupt_payloads": 0,
                                     "read_retries": 0}
        assert snapshot["max_pending"] is None

    def test_leader_failure_releases_followers_and_retires_key(self, pool):
        """The SingleFlight leader-failure path, end to end through the
        service: when the leader's job errors, followers must receive the
        error (not hang), the fingerprint must be retired, and a later
        submission must retry with a fresh execution."""
        service = ExperimentService(executor=pool, cache=None)
        leader = service.resolve(SlowFailJob())
        assert leader.source == "executed"
        follower = service.resolve(SlowFailJob())
        assert follower.source == "deduped"
        with pytest.raises(JobFailedError, match="slow boom"):
            follower.future.result(timeout=30)
        with pytest.raises(JobFailedError, match="slow boom"):
            leader.future.result(timeout=30)
        deadline = time.monotonic() + 5
        while len(service.singleflight) and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(service.singleflight) == 0  # fingerprint retired
        retry = service.resolve(SlowFailJob())
        assert retry.source == "executed"  # not deduped onto a dead flight
        with pytest.raises(JobFailedError, match="slow boom"):
            retry.future.result(timeout=30)

    def test_admission_rejects_at_the_high_water_mark(self, pool, tmp_path):
        service = ExperimentService(executor=pool,
                                    cache=DirectoryCache(tmp_path),
                                    max_pending=0, retry_after=2.5)
        with pytest.raises(AdmissionError) as info:
            service.submit_plan(make_jobs(mst_period=16))
        assert info.value.retry_after == 2.5
        assert service.stats.rejected == 1
        assert service.stats.jobs == 0  # refused before any job was queued
        service.max_pending = None
        resolved = service.submit_plan(make_jobs(mst_period=16))
        assert [item.future.result(timeout=60) for item in resolved]

    def test_admission_arguments_are_validated(self, pool):
        with pytest.raises(ValueError):
            ExperimentService(executor=pool, max_pending=-1)
        with pytest.raises(ValueError):
            ExperimentService(executor=pool, retry_after=0)

    def test_status_record_per_job(self, pool, tmp_path):
        service = ExperimentService(executor=pool,
                                    cache=DirectoryCache(tmp_path))
        job = make_jobs(mst_period=14)[0]
        resolved = service.resolve(job)
        resolved.future.result(timeout=60)
        status = resolved.status().to_dict()
        assert status["source"] == "executed"
        assert status["fingerprint"] == job.fingerprint()
        assert status["scheduler"] == "rescq"


# -- HTTP server ---------------------------------------------------------------

def spec_payload(mst_period=10, seeds=2, **envelope):
    payload = {"name": "svc-test", "benchmarks": ["VQE_n13"],
               "schedulers": ["rescq"], "seeds": seeds,
               "config": {"mst_period": mst_period, "mst_latency": 10}}
    if envelope:
        return {"spec": payload, **envelope}
    return payload


def request(server, method, path, payload=None, raw=None):
    status, _headers, body = request_full(server, method, path,
                                          payload=payload, raw=raw)
    return status, body


def request_full(server, method, path, payload=None, raw=None):
    body = raw if raw is not None else (
        json.dumps(payload).encode() if payload is not None else None)
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=300)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        headers = {name.lower(): value
                   for name, value in response.getheaders()}
        return response.status, headers, response.read()
    finally:
        conn.close()


def ndjson_lines(data):
    return [json.loads(line) for line in data.decode().splitlines()]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    executor = ServiceExecutor(max_workers=2, poll_interval=0.01)
    service = ExperimentService(
        executor=executor,
        cache=DirectoryCache(tmp_path_factory.mktemp("service-cache")))
    instance = ExperimentServer(service, port=0)
    started = threading.Event()
    box = {}

    def runner():
        async def main():
            await instance.start()
            box["loop"] = asyncio.get_event_loop()
            box["stop"] = asyncio.Event()
            started.set()
            await box["stop"].wait()
            await instance.stop(drain=True)
        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(timeout=120), "server failed to start"
    yield instance
    box["loop"].call_soon_threadsafe(box["stop"].set)
    thread.join(timeout=120)
    assert not thread.is_alive(), "server failed to stop cleanly"


class TestExperimentServer:
    def test_healthz(self, server):
        status, data = request(server, "GET", "/healthz")
        assert status == 200
        assert json.loads(data) == {"status": "ok"}

    def test_unknown_path_is_404_with_route_hint(self, server):
        status, data = request(server, "GET", "/nope")
        assert status == 404
        assert "POST /experiments" in json.loads(data)["error"]

    def test_wrong_method_is_405(self, server):
        status, _ = request(server, "GET", "/experiments")
        assert status == 405

    def test_bad_json_is_400(self, server):
        status, data = request(server, "POST", "/experiments", raw=b"{nope")
        assert status == 400
        assert "not valid JSON" in json.loads(data)["error"]

    def test_unknown_benchmark_is_400(self, server):
        payload = spec_payload()
        payload["benchmarks"] = ["no_such_bench"]
        status, data = request(server, "POST", "/experiments", payload=payload)
        assert status == 400
        assert "no_such_bench" in json.loads(data)["error"]

    def test_submit_twice_rows_identical_second_all_cached(self, server):
        status, first = request(server, "POST", "/experiments",
                                payload=spec_payload(mst_period=10))
        assert status == 200
        status, second = request(server, "POST", "/experiments",
                                 payload=spec_payload(mst_period=10))
        assert status == 200

        def split(data):
            lines = data.decode().splitlines()
            return lines[:-1], json.loads(lines[-1])

        first_rows, first_summary = split(first)
        second_rows, second_summary = split(second)
        assert first_rows == second_rows  # byte-identical row stream
        assert first_summary["jobs"] == 2
        assert first_summary["executed"] + first_summary["cache_hits"] == 2
        assert second_summary["executed"] == 0
        assert second_summary["cache_hits"] + second_summary["deduped"] == 2
        rows = ndjson_lines(first)
        assert [row["seed"] for row in rows[:-1]] == [0, 1]
        assert all(row["scheduler"] == "rescq" for row in rows[:-1])
        assert all("status" not in row for row in rows[:-1])

    def test_envelope_status_and_request_id(self, server):
        payload = spec_payload(mst_period=15, seeds=1, request_id="req-7",
                               include_status=True)
        status, data = request(server, "POST", "/experiments",
                               payload=payload)
        assert status == 200
        *rows, summary = ndjson_lines(data)
        assert summary["type"] == "summary"
        assert summary["request_id"] == "req-7"
        assert len(rows) == 1
        row_status = rows[0]["status"]
        assert row_status["source"] in ("executed", "cache", "deduped")
        assert len(row_status["fingerprint"]) == 64

    def test_stats_endpoint_reflects_traffic(self, server):
        request(server, "POST", "/experiments",
                payload=spec_payload(mst_period=10))
        status, data = request(server, "GET", "/stats")
        assert status == 200
        snapshot = json.loads(data)
        assert snapshot["requests"] >= 1
        assert snapshot["jobs"] >= 2
        assert snapshot["in_flight"] == 0
        assert "cache" in snapshot

    def test_oversized_body_is_413_without_reading_it(self, server):
        """A huge declared Content-Length is refused on the head alone."""
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.putrequest("POST", "/experiments")
            conn.putheader("Content-Length", str(64 * 1024 * 1024))
            conn.endheaders()  # never send the body
            response = conn.getresponse()
            assert response.status == 413
            assert "byte limit" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_admission_refusal_is_429_with_retry_after(self, server):
        server.service.max_pending = 0
        server.service.retry_after = 2.0
        try:
            status, headers, data = request_full(
                server, "POST", "/experiments",
                payload=spec_payload(mst_period=17))
            assert status == 429
            assert headers["retry-after"] == "2"
            assert "max_pending" in json.loads(data)["error"]
        finally:
            server.service.max_pending = None
            server.service.retry_after = 1.0

    def test_indices_runs_a_sub_plan(self, server):
        payload = spec_payload(mst_period=18, seeds=3, indices=[1])
        status, data = request(server, "POST", "/experiments",
                               payload=payload)
        assert status == 200
        *rows, summary = ndjson_lines(data)
        assert summary["jobs"] == 1
        assert [row["seed"] for row in rows] == [1]

    def test_out_of_range_indices_is_400(self, server):
        payload = spec_payload(mst_period=18, seeds=2, indices=[9])
        status, data = request(server, "POST", "/experiments",
                               payload=payload)
        assert status == 400
        assert "out of range" in json.loads(data)["error"]

    def test_non_increasing_indices_is_400(self, server):
        payload = spec_payload(mst_period=18, seeds=2, indices=[1, 0])
        status, data = request(server, "POST", "/experiments",
                               payload=payload)
        assert status == 400
        assert "strictly increasing" in json.loads(data)["error"]

    def test_cache_peer_routes_share_the_service_backend(self, server):
        status, data = request(server, "GET", "/cache")
        assert status == 200
        fingerprints = {entry["fingerprint"]
                        for entry in json.loads(data)["entries"]}
        # Jobs executed by earlier tests were published to the backend the
        # peer routes expose.
        snapshot = json.loads(request(server, "GET", "/stats")[1])
        assert len(fingerprints) == snapshot["cache"]["stores"]
        for fingerprint in fingerprints:
            status, _data = request(server, "HEAD",
                                    f"/cache/{fingerprint}")
            assert status == 200

    def test_cache_route_rejects_malformed_fingerprints(self, server):
        status, data = request(server, "GET", "/cache/..%2Fescape")
        assert status == 400
        assert "lowercase hex" in json.loads(data)["error"]
