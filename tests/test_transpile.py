"""Tests for lowering circuits into the Clifford+Rz scheduler basis."""

import math

import pytest

from repro.circuits import (
    BASIS,
    Circuit,
    Gate,
    GateType,
    decompose_gate,
    transpile_to_clifford_rz,
)


def _types(gates):
    return [gate.gate_type for gate in gates]


class TestSingleGateDecompositions:
    def test_basis_gates_pass_through(self):
        for gate in (Gate(GateType.RZ, (0,), angle=0.5), Gate(GateType.H, (0,)),
                     Gate(GateType.X, (0,)), Gate(GateType.CNOT, (0, 1))):
            assert decompose_gate(gate) == [gate]

    @pytest.mark.parametrize("gtype,angle", [
        (GateType.Z, math.pi), (GateType.S, math.pi / 2),
        (GateType.SDG, -math.pi / 2), (GateType.T, math.pi / 4),
        (GateType.TDG, -math.pi / 4)])
    def test_phase_gates_become_rz(self, gtype, angle):
        lowered = decompose_gate(Gate(gtype, (0,)))
        assert len(lowered) == 1
        assert lowered[0].gate_type is GateType.RZ
        assert lowered[0].angle == pytest.approx(angle)

    def test_rx_decomposition(self):
        lowered = decompose_gate(Gate(GateType.RX, (0,), angle=0.7))
        assert _types(lowered) == [GateType.H, GateType.RZ, GateType.H]
        assert lowered[1].angle == pytest.approx(0.7)

    def test_ry_decomposition_contains_one_arbitrary_rz(self):
        lowered = decompose_gate(Gate(GateType.RY, (0,), angle=0.7))
        arbitrary = [g for g in lowered if g.gate_type is GateType.RZ
                     and abs(abs(g.angle) - math.pi / 2) > 1e-9]
        assert len(arbitrary) == 1

    def test_cz_decomposition(self):
        lowered = decompose_gate(Gate(GateType.CZ, (0, 1)))
        assert _types(lowered) == [GateType.H, GateType.CNOT, GateType.H]

    def test_swap_is_three_cnots(self):
        lowered = decompose_gate(Gate(GateType.SWAP, (0, 1)))
        assert _types(lowered) == [GateType.CNOT] * 3

    def test_rzz_decomposition(self):
        lowered = decompose_gate(Gate(GateType.RZZ, (0, 1), angle=0.9))
        assert _types(lowered) == [GateType.CNOT, GateType.RZ, GateType.CNOT]
        assert lowered[1].qubits == (1,)

    def test_toffoli_decomposition_counts(self):
        lowered = decompose_gate(Gate(GateType.CCX, (0, 1, 2)))
        counts = {gtype: _types(lowered).count(gtype) for gtype in set(_types(lowered))}
        assert counts[GateType.CNOT] == 6
        assert counts[GateType.H] == 2
        assert counts[GateType.RZ] == 7

    def test_unknown_gate_rejected(self):
        class Fake:
            gate_type = "nope"
        with pytest.raises((ValueError, AttributeError)):
            decompose_gate(Fake())  # type: ignore[arg-type]


class TestCircuitTranspilation:
    def test_output_only_contains_basis(self):
        circuit = Circuit(3)
        circuit.append(Gate(GateType.RY, (0,), angle=0.4))
        circuit.append(Gate(GateType.CZ, (0, 1)))
        circuit.append(Gate(GateType.SWAP, (1, 2)))
        circuit.append(Gate(GateType.CCX, (0, 1, 2)))
        lowered = transpile_to_clifford_rz(circuit)
        assert all(g.gate_type in BASIS or g.gate_type is GateType.RZ
                   for g in lowered)

    def test_identity_rotations_dropped(self):
        circuit = Circuit(1)
        circuit.append(Gate(GateType.RZ, (0,), angle=2 * math.pi))
        circuit.append(Gate(GateType.RZ, (0,), angle=0.5))
        lowered = transpile_to_clifford_rz(circuit)
        assert len(lowered) == 1
        assert lowered[0].angle == pytest.approx(0.5)

    def test_identity_rotations_kept_when_requested(self):
        circuit = Circuit(1)
        circuit.append(Gate(GateType.RZ, (0,), angle=2 * math.pi))
        lowered = transpile_to_clifford_rz(circuit, drop_identity=False)
        assert len(lowered) == 1

    def test_qubit_count_preserved(self):
        circuit = Circuit(5)
        circuit.append(Gate(GateType.SWAP, (0, 4)))
        assert transpile_to_clifford_rz(circuit).num_qubits == 5
