"""Tests for the seeded scenario generators and the benchmark resolver."""

import pytest

from repro.api.registry import UnknownEntryError
from repro.api.spec import ExperimentSpec, SpecValidationError
from repro.circuits import BASIS, GateType, to_qasm
from repro.exec.jobs import job_fingerprint
from repro.workloads import (
    BENCHMARK_REGISTRY,
    CURATED_SCENARIOS,
    ScenarioError,
    build_scenario,
    clifford_t_circuit,
    congestion_circuit,
    parse_scenario_name,
    resolve_benchmark,
    scenario_name,
    scenario_sweep_names,
)


class TestGenerators:
    def test_same_seed_same_circuit(self):
        a = clifford_t_circuit(n=10, depth=12, seed=5)
        b = clifford_t_circuit(n=10, depth=12, seed=5)
        assert a == b

    def test_different_seed_different_circuit(self):
        a = clifford_t_circuit(n=10, depth=12, seed=5)
        b = clifford_t_circuit(n=10, depth=12, seed=6)
        assert a != b

    def test_output_is_in_scheduler_basis(self):
        for name in ("scenario:clifford_t:n=6,depth=8",
                     "scenario:clifford_rz:n=6,depth=8",
                     "scenario:congestion:n=6,layers=2"):
            circuit = build_scenario(name)
            assert all(gate.gate_type in BASIS for gate in circuit)

    def test_t_density_moves_rotation_count(self):
        sparse = clifford_t_circuit(n=12, depth=30, t_density=0.05, seed=1)
        dense = clifford_t_circuit(n=12, depth=30, t_density=0.9, seed=1)
        assert dense.stats().num_rz > sparse.stats().num_rz

    def test_connectivity_bounds_cnot_span(self):
        circuit = clifford_t_circuit(n=16, depth=20, connectivity=2, seed=3,
                                     cx_fraction=0.9, transpile=False)
        spans = [abs(g.qubits[0] - g.qubits[1]) for g in circuit
                 if g.gate_type is GateType.CNOT]
        assert spans and max(spans) <= 2

    def test_congestion_layers_cross_the_register(self):
        circuit = congestion_circuit(n=12, layers=1, seed=0, transpile=False)
        crossings = [g for g in circuit if g.gate_type is GateType.CNOT]
        # Every crossing CNOT pairs qubit i with n-1-i.
        assert len(crossings) == 6
        assert all(sum(g.qubits) == 11 for g in crossings)

    def test_congestion_rz_storm_hits_hotspot_window(self):
        circuit = congestion_circuit(n=12, layers=1, hotspot=0.5, seed=0,
                                     transpile=False)
        rz_qubits = {g.qubits[0] for g in circuit
                     if g.gate_type is GateType.RZ}
        assert len(rz_qubits) == 6  # half the register


class TestScenarioNames:
    def test_canonical_name_sorts_parameters(self):
        name = scenario_name("clifford_t", depth=10, n=8)
        body = name.split(":", 2)[2]
        keys = [item.split("=")[0] for item in body.split(",")]
        assert keys == sorted(keys)

    def test_parse_inverts_format(self):
        name = scenario_name("clifford_t", n=8, depth=10, t_density=0.5)
        family, params = parse_scenario_name(name)
        assert family.name == "clifford_t"
        assert params["n"] == 8 and params["t_density"] == 0.5

    def test_parse_applies_defaults(self):
        _family, params = parse_scenario_name("scenario:congestion:n=8")
        assert params["layers"] == 4
        assert params["hotspot"] == pytest.approx(0.34)

    def test_build_names_circuit_after_request(self):
        name = "scenario:clifford_t:n=6,depth=4,seed=2"
        assert build_scenario(name).name == name

    @pytest.mark.parametrize("bad,needle", [
        ("clifford_t", "start with"),
        ("scenario:", "names no family"),
        ("scenario:warp:n=4", "unknown scenario family"),
        ("scenario:clifford_t:n", "key=value"),
        ("scenario:clifford_t:n=2,n=3", "twice"),
        ("scenario:clifford_t:n=two", "expects int"),
        ("scenario:clifford_t:n=1", ">= 2"),
        ("scenario:clifford_t:t_density=1.5", "<= 1.0"),
        ("scenario:clifford_t:warp=1", "no parameter"),
    ])
    def test_malformed_names_error_actionably(self, bad, needle):
        with pytest.raises(ScenarioError, match=needle):
            parse_scenario_name(bad)

    def test_sweep_names_vary_one_parameter(self):
        names = scenario_sweep_names("clifford_t", "depth", [4, 8], n=6)
        assert len(names) == 2
        assert parse_scenario_name(names[0])[1]["depth"] == 4
        assert parse_scenario_name(names[1])[1]["depth"] == 8

    def test_sweep_rejects_unknown_parameter(self):
        with pytest.raises(ScenarioError, match="no parameter"):
            scenario_sweep_names("clifford_t", "warp", [1, 2])


class TestResolver:
    def test_curated_scenarios_are_registered_benchmarks(self):
        for name in CURATED_SCENARIOS:
            assert name in BENCHMARK_REGISTRY
            spec = resolve_benchmark(name)
            assert spec.suite == "scenario"
            assert spec.build().name == name

    def test_dynamic_scenario_resolves_without_registration(self):
        name = "scenario:clifford_t:n=5,depth=3,seed=9"
        spec = resolve_benchmark(name)
        assert name not in BENCHMARK_REGISTRY
        assert spec.num_qubits == 5

    def test_table3_names_still_resolve(self):
        assert resolve_benchmark("qft_n18").name == "qft_n18"

    def test_qasm_path_resolves_to_imported_benchmark(self, tmp_path):
        path = tmp_path / "tiny.qasm"
        path.write_text('OPENQASM 2.0;\ninclude "qelib1.inc";\n'
                        'qreg q[2];\nh q[0];\ncx q[0],q[1];\n')
        spec = resolve_benchmark(str(path))
        assert spec.suite == "imported"
        assert spec.name == str(path)
        circuit = spec.build()
        assert circuit.name == str(path)
        assert len(circuit) == 2

    def test_imported_builds_are_independent_copies(self, tmp_path):
        path = tmp_path / "tiny.qasm"
        path.write_text('OPENQASM 2.0;\nqreg q[1];\nh q[0];\n')
        spec = resolve_benchmark(str(path))
        assert spec.build() is not spec.build()

    def test_malformed_qasm_fails_at_resolution(self, tmp_path):
        path = tmp_path / "broken.qasm"
        path.write_text("OPENQASM 2.0;\nqreg q[1];\nwarp q[0];\n")
        with pytest.raises(ValueError, match="unknown gate"):
            resolve_benchmark(str(path))

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(UnknownEntryError, match="scenario:<family>"):
            resolve_benchmark("not_a_benchmark")

    def test_non_qasm_path_rejected(self):
        with pytest.raises(UnknownEntryError, match="only .qasm"):
            resolve_benchmark("/tmp/whatever.txt")


def fingerprint_for(circuit):
    from repro.api.registries import LAYOUTS, SCHEDULERS
    from repro.sim.config import SimulationConfig
    scheduler = SCHEDULERS.create("rescq")
    layout = LAYOUTS.create("star", circuit, compression=0.0, seed=0)
    return job_fingerprint(circuit, scheduler, SimulationConfig(), layout, 0)


class TestCacheSoundness:
    """Fingerprints must track imported file content and generator params."""

    def test_identical_scenario_names_share_a_fingerprint(self):
        name = "scenario:clifford_rz:n=6,depth=6,seed=4"
        first = fingerprint_for(build_scenario(name))
        second = fingerprint_for(build_scenario(name))
        assert first == second

    @pytest.mark.parametrize("other", [
        "scenario:clifford_rz:n=6,depth=6,seed=5",       # seed change
        "scenario:clifford_rz:n=6,depth=7,seed=4",       # param change
        "scenario:clifford_rz:n=6,depth=6,seed=4,rz_density=0.9",
    ])
    def test_seed_or_param_change_is_a_cache_miss(self, other):
        base = fingerprint_for(
            build_scenario("scenario:clifford_rz:n=6,depth=6,seed=4"))
        assert fingerprint_for(build_scenario(other)) != base

    def test_equivalent_scenario_spellings_share_a_fingerprint(self):
        def fingerprint(name):
            spec = ExperimentSpec(name="spell", benchmarks=(name,),
                                  schedulers=("rescq",), seeds=1)
            return spec.expand()[0].fingerprint()
        # Key order is normalised to the canonical spelling at spec
        # construction, so both references label (and cache) identically.
        assert (fingerprint("scenario:clifford_rz:depth=6,n=6,seed=4")
                == fingerprint("scenario:clifford_rz:n=6,depth=6,seed=4"))

    def test_file_content_change_is_a_cache_miss(self, tmp_path):
        path = tmp_path / "w.qasm"
        path.write_text('OPENQASM 2.0;\nqreg q[2];\nh q[0];\n')
        before = fingerprint_for(resolve_benchmark(str(path)).build())
        path.write_text('OPENQASM 2.0;\nqreg q[2];\nh q[0];\nh q[1];\n')
        after = fingerprint_for(resolve_benchmark(str(path)).build())
        assert before != after

    def test_barrier_only_difference_is_a_cache_miss(self, tmp_path):
        plain = tmp_path / "plain.qasm"
        fenced = tmp_path / "plain2.qasm"
        plain.write_text('OPENQASM 2.0;\nqreg q[2];\nh q[0];\nh q[1];\n')
        fenced.write_text(
            'OPENQASM 2.0;\nqreg q[2];\nh q[0];\nbarrier q;\nh q[1];\n')
        a = resolve_benchmark(str(plain)).build().copy(name="same")
        b = resolve_benchmark(str(fenced)).build().copy(name="same")
        assert fingerprint_for(a) != fingerprint_for(b)


class TestSpecIntegration:
    def test_spec_accepts_scenario_and_qasm_benchmarks(self, tmp_path):
        path = tmp_path / "mini.qasm"
        path.write_text('OPENQASM 2.0;\ninclude "qelib1.inc";\n'
                        'qreg q[2];\nh q[0];\nrz(0.4) q[0];\ncx q[0],q[1];\n')
        spec = ExperimentSpec(
            name="mixed",
            benchmarks=("scenario:clifford_t:n=5,depth=3,seed=1", str(path)),
            schedulers=("rescq",),
            seeds=1,
        )
        jobs = spec.validate().expand()
        assert [job.benchmark for job in jobs] == list(spec.benchmarks)
        results = [job.run() for job in jobs]
        assert all(result.total_cycles > 0 for result in results)

    @pytest.mark.parametrize("entry", [5, ["a"]])
    def test_spec_rejects_non_string_benchmark(self, entry):
        spec = ExperimentSpec(name="bad", benchmarks=(entry,), seeds=1)
        with pytest.raises(SpecValidationError, match="must be strings"):
            spec.validate()

    def test_equivalent_spellings_dedup_to_one_benchmark(self):
        spec = ExperimentSpec(
            name="dup",
            benchmarks=("scenario:clifford_t:depth=4,n=6",
                        "scenario:clifford_t:n=6,depth=4"),
            schedulers=("rescq",),
            seeds=1,
        )
        assert len(spec.benchmarks) == 1
        assert len(spec.expand()) == 1

    def test_spec_rejects_bad_scenario_with_its_message(self):
        spec = ExperimentSpec(
            name="bad", benchmarks=("scenario:clifford_t:n=1",), seeds=1)
        with pytest.raises(SpecValidationError, match=">= 2"):
            spec.validate()

    def test_spec_rejects_malformed_qasm_with_position(self, tmp_path):
        path = tmp_path / "broken.qasm"
        path.write_text("OPENQASM 2.0;\nqreg q[1];\nwarp q[0];\n")
        spec = ExperimentSpec(name="bad", benchmarks=(str(path),), seeds=1)
        with pytest.raises(SpecValidationError, match="broken.qasm:3"):
            spec.validate()

    def test_generated_qasm_runs_end_to_end(self, tmp_path):
        path = tmp_path / "gen.qasm"
        circuit = build_scenario("scenario:congestion:n=6,layers=2,seed=8")
        path.write_text(to_qasm(circuit))
        spec = ExperimentSpec(name="roundtrip", benchmarks=(str(path),),
                              schedulers=("greedy",), seeds=1)
        jobs = spec.expand()
        assert len(jobs) == 1
        assert jobs[0].run().total_cycles > 0
