"""Unit tests for the gate dependency graph and its release interface."""

import pytest

from repro.circuits import Circuit, GateDependencyGraph


def build_chain():
    # h(0) -> rz(0) -> cnot(0,1) ; rz(1) -> cnot(0,1) ; cnot(0,1) -> rz(1) #2
    circuit = Circuit(2)
    circuit.h(0)          # 0
    circuit.rz(0, 0.3)    # 1
    circuit.rz(1, 0.5)    # 2
    circuit.cnot(0, 1)    # 3
    circuit.rz(1, 0.7)    # 4
    return circuit


class TestStructure:
    def test_nodes_exclude_free_gates(self):
        circuit = Circuit(2).x(0).h(0).cnot(0, 1)
        dag = GateDependencyGraph(circuit)
        assert 0 not in dag.nodes  # x is a frame update
        assert set(dag.nodes) == {1, 2}

    def test_successors_follow_qubit_order(self):
        dag = GateDependencyGraph(build_chain())
        assert dag.successors(0) == (1,)
        assert dag.successors(1) == (3,)
        assert dag.successors(2) == (3,)
        assert dag.successors(3) == (4,)

    def test_predecessor_counts(self):
        dag = GateDependencyGraph(build_chain())
        assert dag.predecessor_count(0) == 0
        assert dag.predecessor_count(3) == 2
        assert dag.predecessor_count(4) == 1

    def test_critical_path_lengths(self):
        dag = GateDependencyGraph(build_chain())
        assert dag.critical_path_length(0) == 4   # h, rz, cnot, rz
        assert dag.critical_path_length(2) == 3
        assert dag.critical_path_length(4) == 1

    def test_topological_order_is_program_order(self):
        dag = GateDependencyGraph(build_chain())
        assert dag.topological_order() == [0, 1, 2, 3, 4]

    def test_gates_on_qubit(self):
        dag = GateDependencyGraph(build_chain())
        assert dag.gates_on_qubit(1) == [2, 3, 4]


class TestRelease:
    def test_initial_ready_set(self):
        dag = GateDependencyGraph(build_chain())
        assert set(dag.ready) == {0, 2}

    def test_completion_releases_successors(self):
        dag = GateDependencyGraph(build_chain())
        released = dag.complete(0)
        assert released == [1]
        assert dag.is_ready(1)

    def test_join_requires_both_predecessors(self):
        dag = GateDependencyGraph(build_chain())
        dag.complete(0)
        dag.complete(1)
        assert not dag.is_ready(3)
        released = dag.complete(2)
        assert released == [3]

    def test_double_completion_rejected(self):
        dag = GateDependencyGraph(build_chain())
        dag.complete(0)
        with pytest.raises(ValueError):
            dag.complete(0)

    def test_premature_completion_rejected(self):
        dag = GateDependencyGraph(build_chain())
        with pytest.raises(ValueError):
            dag.complete(3)

    def test_unknown_gate_rejected(self):
        dag = GateDependencyGraph(build_chain())
        with pytest.raises(KeyError):
            dag.complete(99)

    def test_all_completed_after_full_run(self):
        dag = GateDependencyGraph(build_chain())
        for index in [0, 1, 2, 3, 4]:
            dag.complete(index)
        assert dag.all_completed
        assert dag.num_pending == 0

    def test_ready_by_priority_prefers_critical_path(self):
        dag = GateDependencyGraph(build_chain())
        # Gate 0 has the longer remaining chain than gate 2.
        assert dag.ready_by_priority() == [0, 2]

    def test_reset_restores_initial_state(self):
        dag = GateDependencyGraph(build_chain())
        dag.complete(0)
        dag.reset()
        assert set(dag.ready) == {0, 2}
        assert not dag.all_completed
