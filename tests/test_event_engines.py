"""Event-engine equivalence: python, batched (and numba when installed).

The batched event engine (ISSUE 9) must be a pure performance change:
every engine dispatches the exact same events in the exact same order, so
all simulated traces are byte-identical.  These tests pin that from three
angles — the raw clock interface (ordering, tie-breaks, same-sweep
pickup), the backend registry plumbing, and whole scheduler runs over
random scenario-generator circuits.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimulationConfig
from repro.analysis.export import result_to_dict
from repro.kernel import (
    KERNEL_BACKEND_NAMES,
    BatchedEngine,
    NumbaEngine,
    SimulationClock,
    create_engine,
    kernel_numba_available,
)
from repro.kernel.lifecycle import GateLifecycle
from repro.scheduling import SCHEDULER_REGISTRY
from repro.sim.runner import default_layout
from repro.workloads.scenarios import clifford_rz_circuit, congestion_circuit


# ---------------------------------------------------------------------------
# Clock-interface parity: the batched engine against the reference heap
# ---------------------------------------------------------------------------

class _RecordingPolicy:
    """Records every (tag, payload) exactly as the policy would see them."""

    def __init__(self):
        self.events = []
        self.batch_calls = 0

    def handle_event(self, tag, payload):
        self.events.append((tag, payload))

    def handle_event_batch(self, tag, payloads):
        self.batch_calls += 1
        for payload in payloads:
            self.events.append((tag, payload))


def _drive(engine, pushes, until):
    """Push, then drain boundary by boundary; return the dispatch order."""
    policy = _RecordingPolicy()
    for cycle, tag, payload in pushes:
        engine.push(cycle, tag, payload)
    while True:
        next_cycle = engine.next_event_cycle()
        if next_cycle is None or next_cycle > until:
            return policy
        engine.advance(next_cycle)
        engine.dispatch_due(next_cycle, policy)


class TestEngineOrderParity:
    PUSHES = [
        (5, "prep", (0,)), (3, "cnot", (1,)), (5, "prep", (2,)),
        (5, "inject", (3,)), (3, "cnot", (4,)), (9, "h", (5,)),
        (5, "prep", (6,)), (5, "prep", (7,)), (3, "prep", (8,)),
    ]

    def test_same_order_as_reference(self):
        reference = _drive(SimulationClock(), self.PUSHES, 10)
        batched = _drive(BatchedEngine(), self.PUSHES, 10)
        assert batched.events == reference.events
        assert batched.batch_calls > 0  # runs of equal tags did batch

    def test_push_order_is_the_tie_break(self):
        """Within one cycle, events fire in push order (the heap's seq)."""
        engine = BatchedEngine()
        pushes = [(4, "prep", (i,)) for i in range(20)]
        policy = _drive(engine, pushes, 10)
        assert [p[0] for _, p in policy.events] == list(range(20))

    def test_same_sweep_pickup(self):
        """Events pushed mid-dispatch at the due cycle fire in that sweep."""

        class Chaining(_RecordingPolicy):
            def __init__(self, engine):
                super().__init__()
                self.engine = engine

            def handle_event(self, tag, payload):
                super().handle_event(tag, payload)
                if tag == "first":
                    self.engine.push(self.engine.now, "chained", payload)

        for engine in (SimulationClock(), BatchedEngine()):
            policy = Chaining(engine)
            engine.push(2, "first", (0,))
            engine.advance(2)
            engine.dispatch_due(2, policy)
            assert [tag for tag, _ in policy.events] == ["first", "chained"]

    def test_pop_due_matches_reference(self):
        reference, batched = SimulationClock(), BatchedEngine()
        for cycle, tag, payload in self.PUSHES:
            reference.push(cycle, tag, payload)
            batched.push(cycle, tag, payload)
        assert list(batched.pop_due(5)) == list(reference.pop_due(5))
        assert batched.pending_events == reference.pending_events
        assert list(batched.pop_due(99)) == list(reference.pop_due(99))
        assert batched.pending_events == 0

    def test_dispatch_counters(self):
        engine = BatchedEngine()
        _drive(engine, self.PUSHES, 10)
        assert engine.events_processed == len(self.PUSHES)
        assert engine.max_bucket_events == 5   # the cycle-5 bucket
        # Runs of equal consecutive tags: cycle 3 -> [cnot cnot | prep],
        # cycle 5 -> [prep prep | inject | prep prep], cycle 9 -> [h].
        assert engine.batches_dispatched == 6

    def test_next_event_cycle_skips_drained_buckets(self):
        engine = BatchedEngine()
        engine.push(3, "a", ())
        engine.push(7, "b", ())
        assert engine.next_event_cycle() == 3
        list(engine.pop_due(3))
        assert engine.next_event_cycle() == 7
        list(engine.pop_due(7))
        assert engine.next_event_cycle() is None


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

class TestEngineRegistry:
    def test_known_names(self):
        assert KERNEL_BACKEND_NAMES == ("python", "batched", "numba")
        assert create_engine("python").name == "python"
        assert create_engine("batched").name == "batched"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            create_engine("fortran")

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            SimulationConfig(kernel_backend="fortran")

    def test_default_backend_is_batched(self):
        assert SimulationConfig().kernel_backend == "batched"

    @pytest.mark.skipif(kernel_numba_available(), reason="numba installed: "
                        "the missing-dependency error path cannot be "
                        "exercised")
    def test_numba_engine_without_numba_raises_actionably(self):
        with pytest.raises(RuntimeError, match=r"repro\[numba\]"):
            NumbaEngine()

    @pytest.mark.skipif(not kernel_numba_available(),
                        reason="numba not installed")
    def test_numba_engine_matches_reference(self):
        pushes = [(2, "prep", (i,)) for i in range(600)]  # > run threshold
        pushes += [(2, "inject", (i,)) for i in range(600, 700)]
        reference = _drive(SimulationClock(), pushes, 5)
        compiled = _drive(NumbaEngine(), pushes, 5)
        assert compiled.events == reference.events


# ---------------------------------------------------------------------------
# Deadlock diagnostics (the DeadlockError message names stuck gates)
# ---------------------------------------------------------------------------

class TestDeadlockDiagnostics:
    def test_describe_pending_names_gates(self):
        circuit = clifford_rz_circuit(4, depth=3, seed=0)
        lifecycle = GateLifecycle(circuit)
        description = lifecycle.describe_pending()
        assert description.startswith("#")
        first = description.split(",")[0]          # e.g. "#0 rz"
        index = int(first.split()[0].lstrip("#"))
        assert circuit[index].name in first

    def test_describe_pending_truncates(self):
        circuit = clifford_rz_circuit(8, depth=4, seed=1)
        description = GateLifecycle(circuit).describe_pending(limit=2)
        assert description.endswith("...")
        assert description.count("#") == 2


# ---------------------------------------------------------------------------
# Whole-run equivalence on scenario-generator circuits (hypothesis)
# ---------------------------------------------------------------------------

def _run(circuit, engine: str, seed: int):
    config = SimulationConfig(mst_period=10, mst_latency=20,
                              kernel_backend=engine)
    layout = default_layout(circuit)
    scheduler = SCHEDULER_REGISTRY.create("rescq")
    return result_to_dict(scheduler.run(circuit, layout, config, seed=seed))


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(4, 10), depth=st.integers(2, 5),
       circuit_seed=st.integers(0, 1000), run_seed=st.integers(0, 3))
def test_engines_produce_identical_traces(n, depth, circuit_seed, run_seed):
    """python and batched engines yield byte-identical scheduler results."""
    circuit = clifford_rz_circuit(n, depth=depth, seed=circuit_seed)
    reference = _run(circuit, "python", run_seed)
    batched = _run(circuit, "batched", run_seed)
    assert batched == reference


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(4, 8), circuit_seed=st.integers(0, 500),
       run_seed=st.integers(0, 3))
def test_engines_identical_under_congestion(n, circuit_seed, run_seed):
    """Parity holds when ancilla contention forces deep queues."""
    circuit = congestion_circuit(n, seed=circuit_seed)
    reference = _run(circuit, "python", run_seed)
    batched = _run(circuit, "batched", run_seed)
    assert batched == reference


def test_engines_identical_on_dense_scenario():
    """Deterministic (non-hypothesis) cross-engine check on a denser case."""
    circuit = clifford_rz_circuit(12, depth=6, cx_fraction=0.5, seed=21)
    reference = _run(circuit, "python", 1)
    batched = _run(circuit, "batched", 1)
    assert batched == reference
    if kernel_numba_available():
        assert _run(circuit, "numba", 1) == reference


def test_profile_records_batch_counters():
    circuit = clifford_rz_circuit(6, depth=3, seed=2)
    config = SimulationConfig(profile_enabled=True)
    layout = default_layout(circuit)
    scheduler = SCHEDULER_REGISTRY.create("rescq")
    result = scheduler.run(circuit, layout, config, seed=0)
    assert result.profile.get("event_batches", 0) > 0
    assert result.profile.get("max_bucket_events", 0) >= 1
