"""Golden-trace regression suite for the kernel extraction.

The JSON files under ``tests/golden/`` were captured at the commit
immediately *before* the simulation kernel existed (PR 2 HEAD), by running
the original hand-rolled scheduler loops.  Every case asserts that today's
kernel-based schedulers reproduce those runs **byte-identically**: same
per-gate traces, same cycle counts, same injection/preparation statistics,
same data-qubit busy accounting.

If one of these fails, the refactor changed scheduler behaviour — that is a
bug unless the change is intentional, in which case regenerate with
``PYTHONPATH=src python tests/capture_golden.py`` and say why in the commit.
"""

from __future__ import annotations

import os

import pytest

from repro.kernel import kernel_numba_available
from repro.lattice import numba_available

from golden_cases import golden_cases, golden_path, load_golden, run_case

_BACKEND = os.environ.get("RESCQ_GOLDEN_BACKEND", "")
if _BACKEND == "numba" and not numba_available():
    pytest.skip("RESCQ_GOLDEN_BACKEND=numba requested but numba is not "
                "importable (no wheel for this platform/python); the numba "
                "backend is an optional extra", allow_module_level=True)

_ENGINE = os.environ.get("RESCQ_GOLDEN_ENGINE", "")
if _ENGINE == "numba" and not kernel_numba_available():
    pytest.skip("RESCQ_GOLDEN_ENGINE=numba requested but numba is not "
                "importable (no wheel for this platform/python); the numba "
                "event engine is an optional extra", allow_module_level=True)

CASES = golden_cases()


@pytest.mark.parametrize("case_id,circuit_key,scheduler,seed,variant",
                         CASES, ids=[case[0] for case in CASES])
def test_golden_trace(case_id, circuit_key, scheduler, seed, variant):
    assert os.path.exists(golden_path(case_id)), (
        f"missing golden file for {case_id}; run tests/capture_golden.py")
    golden = load_golden(case_id)
    fresh = run_case(circuit_key, scheduler, seed, variant)
    # Compare piecewise first for a readable diff, then whole.
    assert fresh["total_cycles"] == golden["total_cycles"]
    assert fresh["data_busy_cycles"] == golden["data_busy_cycles"]
    assert fresh["metadata"] == golden["metadata"]
    for index, (fresh_trace, golden_trace) in enumerate(
            zip(fresh["traces"], golden["traces"])):
        assert fresh_trace == golden_trace, (
            f"{case_id}: trace {index} diverged")
    assert fresh == golden


def test_golden_suite_covers_all_schedulers_and_variants():
    schedulers = {case[2] for case in CASES}
    variants = {case[4] for case in CASES}
    assert schedulers == {"greedy", "autobraid", "rescq"}
    assert {"default", "no_mst", "ablated", "compressed"} <= variants
