"""Tests for the shared simulation kernel (clock, fabric state, lifecycle,
profiler, routing index) and the vectorised RUS sampling that feeds it."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimulationConfig, default_layout
from repro.circuits import Circuit
from repro.fabric import StarVariant, star_layout
from repro.kernel import (FabricState, GateLifecycle, KernelProfile,
                          SimulationClock)
from repro.lattice import (OrientationTracker, RoutingIndex,
                           bfs_ancilla_path, enumerate_cnot_plans)
from repro.rus import InjectionModel, PreparationModel
from repro.scheduling import (AutoBraidScheduler, GreedyScheduler,
                              RescqScheduler)
from repro.sim.results import GateTrace


# ---------------------------------------------------------------------------
# SimulationClock
# ---------------------------------------------------------------------------

class TestSimulationClock:
    def test_orders_by_cycle_then_push_order(self):
        clock = SimulationClock()
        clock.push(5, "b", (1,))
        clock.push(3, "a", (2,))
        clock.push(5, "c", (3,))
        assert clock.next_event_cycle() == 3
        clock.advance(5)
        drained = list(clock.pop_due(5))
        assert drained == [("a", (2,)), ("b", (1,)), ("c", (3,))]
        assert clock.pending_events == 0
        assert clock.events_processed == 3

    def test_pop_due_leaves_future_events(self):
        clock = SimulationClock()
        clock.push(1, "now", ())
        clock.push(9, "later", ())
        assert [tag for tag, _ in clock.pop_due(5)] == ["now"]
        assert clock.next_event_cycle() == 9

    def test_events_pushed_during_sweep_are_picked_up(self):
        clock = SimulationClock()
        clock.push(2, "first", ())
        seen = []
        for tag, _ in clock.pop_due(4):
            seen.append(tag)
            if tag == "first":
                clock.push(3, "chained", ())
        assert seen == ["first", "chained"]


# ---------------------------------------------------------------------------
# FabricState
# ---------------------------------------------------------------------------

class TestFabricState:
    @pytest.fixture
    def fabric(self, star9):
        return FabricState(star9, 9, activity_window=50)

    def test_initial_state_is_idle(self, fabric):
        assert all(fabric.ancilla_idle(pos, 0) for pos in fabric.ancillas)
        assert all(fabric.data_idle(q, 0) for q in range(9))

    def test_occupy_and_truncate_ancilla(self, fabric):
        tile = fabric.ancillas[0]
        fabric.occupy_ancilla(tile, 0, 10)
        assert not fabric.ancilla_idle(tile, 5)
        fabric.truncate_ancilla(tile, 5)
        assert fabric.ancilla_idle(tile, 5)
        # Truncation never extends occupancy.
        fabric.truncate_ancilla(tile, 9)
        assert fabric.anc_free[tile] == 5

    def test_occupy_data_accounts_busy_cycles(self, fabric):
        fabric.occupy_data(3, 2, 7)
        fabric.occupy_data(3, 9, 12)
        assert fabric.data_free[3] == 12
        assert fabric.data_busy[3] == 8

    def test_layer_barrier_raises_floors_only(self, fabric):
        tile = fabric.ancillas[0]
        fabric.occupy_ancilla(tile, 0, 30)
        fabric.layer_barrier(20)
        assert fabric.anc_free[tile] == 30  # already past the barrier
        assert all(fabric.anc_free[pos] >= 20 for pos in fabric.ancillas)
        assert all(free >= 20 for free in fabric.data_free)

    def test_holds(self, fabric):
        tile = fabric.ancillas[0]
        assert fabric.holder(tile) is None
        fabric.hold(tile, 42)
        assert fabric.holder(tile) == 42
        fabric.release_hold(tile)
        assert fabric.holder(tile) is None

    def test_activity_snapshot_requires_window(self, star9):
        fabric = FabricState(star9, 9)
        with pytest.raises(RuntimeError):
            fabric.activity_snapshot(0)

    def test_activity_snapshot_reflects_busy_intervals(self, fabric):
        tile = fabric.ancillas[0]
        fabric.occupy_ancilla(tile, 0, 25)
        snapshot = fabric.activity_snapshot(50)
        assert snapshot[tile] == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# GateLifecycle
# ---------------------------------------------------------------------------

class TestGateLifecycle:
    def test_release_and_retire_flow(self):
        circuit = Circuit(2, name="chain")
        circuit.h(0).cnot(0, 1).h(1)
        lifecycle = GateLifecycle(circuit)
        lifecycle.release_initial()
        assert lifecycle.release_cycle[0] == 0
        assert not lifecycle.all_completed
        newly = lifecycle.retire(
            GateTrace(0, "h", (0,), scheduled_cycle=0, start_cycle=0,
                      end_cycle=2), now=2)
        assert newly == [1]
        assert lifecycle.release_cycle[1] == 2
        assert len(lifecycle.traces) == 1
        lifecycle.retire(GateTrace(1, "cnot", (0, 1), scheduled_cycle=2,
                                   start_cycle=2, end_cycle=4), now=4)
        lifecycle.retire(GateTrace(2, "h", (1,), scheduled_cycle=4,
                                   start_cycle=4, end_cycle=6), now=6)
        assert lifecycle.all_completed
        assert lifecycle.num_pending == 0


# ---------------------------------------------------------------------------
# KernelProfile
# ---------------------------------------------------------------------------

class TestKernelProfile:
    def test_counters_accumulate(self):
        profile = KernelProfile()
        profile.add("sim_prep_cycles", 3.0)
        profile.add("sim_prep_cycles", 2.0)
        profile.add("events")
        flat = profile.as_dict()
        assert flat["sim_prep_cycles"] == 5.0
        assert flat["events"] == 1.0

    def test_timer_records_wall_time(self):
        profile = KernelProfile()
        with profile.timer("routing"):
            pass
        with profile.timer("routing"):
            pass
        flat = profile.as_dict()
        assert "wall_routing_s" in flat
        assert flat["wall_routing_s"] >= 0.0

    def test_nested_timers_are_exclusive(self):
        import time as _time
        profile = KernelProfile()
        with profile.timer("mst"):
            with profile.timer("routing"):
                _time.sleep(0.02)
        # The inner phase's seconds are booked once, under "routing" only;
        # "mst" keeps just its own (here: negligible) remainder.
        assert profile.wall["routing"] >= 0.02
        assert profile.wall["mst"] < profile.wall["routing"]
        assert profile.wall["mst"] >= 0.0

    def test_nested_timer_same_phase_does_not_double_count(self):
        import time as _time
        profile = KernelProfile()
        with profile.timer("routing"):
            with profile.timer("routing"):
                _time.sleep(0.01)
        # Re-entrant phase: total booked equals elapsed once, not twice.
        assert 0.01 <= profile.wall["routing"] < 0.02

    def test_profile_rows_share_of_total_column(self, qft6):
        from repro.api.resultset import ResultSet
        from repro.exec.jobs import plan_jobs
        layout = default_layout(qft6)
        config = SimulationConfig(mst_period=10, mst_latency=20,
                                  profile_enabled=True)
        jobs = plan_jobs([RescqScheduler()], qft6, config, layout, seeds=1)
        rows = ResultSet.from_jobs(jobs, [job.run() for job in jobs]) \
            .profile_rows()
        row = rows[0]
        assert "share_routing" in row and "share_mst" in row
        assert "share_total" not in row  # the denominator gets no share
        for phase in ("routing", "mst"):
            expected = row[f"wall_{phase}_s"] / row["wall_total_s"]
            assert row[f"share_{phase}"] == pytest.approx(expected, abs=1e-4)
            assert 0.0 <= row[f"share_{phase}"] <= 1.0

    def test_profile_enabled_runs_are_bit_identical(self, qft6):
        layout = default_layout(qft6)
        base = SimulationConfig(mst_period=10, mst_latency=20)
        profiled = base.with_updates(profile_enabled=True)
        for scheduler in (RescqScheduler(), GreedyScheduler()):
            plain = scheduler.run(qft6, layout, base, seed=3)
            traced = scheduler.run(qft6, layout, profiled, seed=3)
            assert plain.traces == traced.traces
            assert plain.total_cycles == traced.total_cycles
            assert not plain.profile
            assert traced.profile
            assert traced.profile["wall_total_s"] > 0.0
            assert traced.profile["sim_prep_cycles"] > 0

    def test_profile_rows_aggregates_and_unions_columns(self, qft6):
        from repro.api.resultset import ResultSet
        from repro.exec.jobs import plan_jobs
        layout = default_layout(qft6)
        config = SimulationConfig(mst_period=10, mst_latency=20,
                                  profile_enabled=True)
        jobs = plan_jobs([GreedyScheduler(), RescqScheduler()], qft6, config,
                         layout, seeds=2)
        results = ResultSet.from_jobs(jobs, [job.run() for job in jobs])
        rows = results.profile_rows()
        assert [row["scheduler"] for row in rows] == ["greedy", "rescq"]
        assert all(row["runs"] == 2 for row in rows)
        # Columns are unioned and ordered identically across policies, so a
        # first-row-keyed table renderer shows every counter.
        assert [list(row) for row in rows] == [list(rows[0])] * len(rows)
        rescq_row = rows[1]
        assert rescq_row["scheduling_passes"] > 0
        assert rows[0]["scheduling_passes"] == 0.0  # layer-sync: no passes
        assert rescq_row["wall_total_s"] > 0
        # Unprofiled runs contribute no rows.
        plain = ResultSet.from_jobs(jobs, [
            job.scheduler.run(job.circuit, job.layout,
                              config.with_updates(profile_enabled=False),
                              seed=job.seed)
            for job in jobs])
        assert plain.profile_rows() == []

    def test_export_include_profile_round_trip(self, qft6):
        from repro.analysis.export import result_from_dict, result_to_dict
        layout = default_layout(qft6)
        config = SimulationConfig(mst_period=10, mst_latency=20,
                                  profile_enabled=True)
        result = RescqScheduler().run(qft6, layout, config, seed=1)
        assert "profile" not in result_to_dict(result)  # byte-stable default
        payload = result_to_dict(result, include_profile=True)
        assert payload["profile"] == result.profile
        restored = result_from_dict(payload)
        assert restored.profile == result.profile
        assert restored.traces == result.traces

    def test_cli_run_profile_flag(self, capsys):
        from repro.cli import main
        assert main(["run", "VQE_n13", "--seeds", "1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "kernel profile" in out
        assert "wall_total_s" in out
        assert "sim_prep_cycles" in out

    def test_cli_run_profile_out_writes_canonical_record(self, capsys,
                                                         tmp_path):
        import json
        from repro.canonical import canonical_dumps
        from repro.cli import main
        out_path = tmp_path / "profile.json"
        # --profile-out implies --profile; --routing-backend python exercises
        # backend selection through the CLI.
        assert main(["run", "VQE_n13", "--seeds", "1", "--schedulers",
                     "rescq", "--profile-out", str(out_path),
                     "--routing-backend", "python"]) == 0
        out = capsys.readouterr().out
        assert "kernel profile" in out
        raw = out_path.read_text(encoding="utf-8")
        record = json.loads(raw)
        assert record["kind"] == "kernel_profile"
        assert record["config"]["routing_backend"] == "python"
        assert record["profile_rows"][0]["scheduler"] == "rescq"
        assert record["profile_rows"][0]["wall_total_s"] > 0
        # Byte-stable: the file is canonical JSON of its own payload.
        assert raw == canonical_dumps(record, indent=2) + "\n"

    def test_profile_counts_match_traces(self, dnn6):
        layout = default_layout(dnn6)
        config = SimulationConfig(mst_period=10, mst_latency=20,
                                  profile_enabled=True)
        result = RescqScheduler().run(dnn6, layout, config, seed=0)
        prep_attempts = sum(t.preparation_attempts for t in result.traces)
        # Every preparation attempt contributed >= 1 simulated cycle.
        assert result.profile["sim_prep_cycles"] >= prep_attempts
        assert result.profile["events"] >= len(result.traces)


# ---------------------------------------------------------------------------
# RoutingIndex
# ---------------------------------------------------------------------------

class TestRoutingIndex:
    def test_matches_uncached_enumeration(self, star9):
        index = RoutingIndex(star9)
        orientation = OrientationTracker(9)
        for control, target in ((0, 1), (0, 8), (3, 5), (7, 2)):
            cached = index.enumerate_plans(orientation, control, target)
            fresh = enumerate_cnot_plans(star9, orientation, control, target)
            assert cached == fresh
        orientation.rotate(0)
        assert (index.enumerate_plans(orientation, 0, 1)
                == enumerate_cnot_plans(star9, orientation, 0, 1))

    def test_repeat_queries_hit_the_cache(self, star9):
        index = RoutingIndex(star9)
        orientation = OrientationTracker(9)
        first = index.enumerate_plans(orientation, 0, 5)
        hits_before = index.plan_cache_hits
        second = index.enumerate_plans(orientation, 0, 5)
        assert second is first
        assert index.plan_cache_hits == hits_before + 1

    def test_for_layout_is_shared_and_survives_pickle_strip(self, star9):
        import pickle
        index = RoutingIndex.for_layout(star9)
        assert RoutingIndex.for_layout(star9) is index
        clone = pickle.loads(pickle.dumps(star9))
        assert not hasattr(clone, "_routing_index")

    def test_disable_invalidates_only_touched_entries(self, star9):
        index = RoutingIndex(star9)
        orientation = OrientationTracker(9)
        plans = index.enumerate_plans(orientation, 0, 8)
        victim = plans[0].path[len(plans[0].path) // 2]
        index.enumerate_plans(orientation, 0, 1)
        cached_pairs_before = len(index._plans)
        star9.disable(victim)
        fresh = index.enumerate_plans(orientation, 0, 8)
        assert fresh == enumerate_cnot_plans(star9, orientation, 0, 8)
        assert all(victim not in plan.ancillas_used for plan in fresh)
        assert len(index._plans) <= cached_pairs_before + 1

    def test_enable_invalidates_everything(self, star9):
        index = RoutingIndex(star9)
        orientation = OrientationTracker(9)
        tile = star9.ancilla_positions()[0]
        star9.disable(tile)
        index.enumerate_plans(orientation, 0, 8)
        star9.enable_ancilla(tile)
        fresh = index.enumerate_plans(orientation, 0, 8)
        assert fresh == enumerate_cnot_plans(star9, orientation, 0, 8)

    def test_path_matches_bfs(self, star9):
        index = RoutingIndex(star9)
        ancillas = star9.ancilla_positions()
        for start, goal in ((ancillas[0], ancillas[-1]),
                            (ancillas[2], ancillas[5])):
            assert index.path(start, goal) == bfs_ancilla_path(
                star9, start, goal)


# ---------------------------------------------------------------------------
# Vectorised RUS sampling
# ---------------------------------------------------------------------------

class TestVectorisedSampling:
    @pytest.mark.parametrize("distance,p", [(7, 1e-4), (5, 1e-3), (13, 1e-5)])
    def test_batched_prep_draws_are_stream_equivalent(self, distance, p):
        model = PreparationModel(distance=distance, physical_error_rate=p)
        scalar_rng = np.random.default_rng(11)
        batch_rng = np.random.default_rng(11)
        scalar = [model.sample_cycles(scalar_rng) for _ in range(500)]
        batch = model.sample_cycles_batch(batch_rng, 500)
        assert scalar == batch.tolist()
        # The stream positions agree afterwards too.
        assert scalar_rng.random() == batch_rng.random()

    def test_batched_attempts_are_stream_equivalent(self):
        model = PreparationModel(distance=7, physical_error_rate=1e-4)
        a, b = np.random.default_rng(5), np.random.default_rng(5)
        assert ([model.sample_attempts(a) for _ in range(200)]
                == model.sample_attempts_batch(b, 200).tolist())

    def test_batched_outcomes_are_stream_equivalent(self):
        model = InjectionModel()
        a, b = np.random.default_rng(9), np.random.default_rng(9)
        assert ([model.sample_outcome(a) for _ in range(300)]
                == model.sample_outcomes_batch(b, 300).tolist())

    def test_batched_injection_counts_distribution(self):
        model = InjectionModel()
        rng = np.random.default_rng(0)
        counts = model.sample_injection_counts(rng, 20000)
        assert counts.min() >= 1
        # Equation 1: E[injections] = 2 for a generic angle.
        assert 1.9 < counts.mean() < 2.1
        clifford = model.sample_injection_counts(rng, 10, theta=math.pi / 2)
        assert clifford.tolist() == [0] * 10
        t_gate = model.sample_injection_counts(rng, 5000, theta=math.pi / 4)
        assert t_gate.max() <= 2


# ---------------------------------------------------------------------------
# Determinism properties (hypothesis)
# ---------------------------------------------------------------------------

@st.composite
def random_circuits(draw):
    num_qubits = draw(st.integers(2, 5))
    num_gates = draw(st.integers(1, 20))
    circuit = Circuit(num_qubits, name="random")
    for _ in range(num_gates):
        kind = draw(st.sampled_from(["rz", "h", "cnot"]))
        if kind == "cnot" and num_qubits >= 2:
            control = draw(st.integers(0, num_qubits - 1))
            target = draw(st.integers(0, num_qubits - 2))
            if target >= control:
                target += 1
            circuit.cnot(control, target)
        elif kind == "h":
            circuit.h(draw(st.integers(0, num_qubits - 1)))
        else:
            circuit.rz(draw(st.integers(0, num_qubits - 1)),
                       draw(st.floats(0.05, 3.0)))
    return circuit


def _shuffled_layout(circuit, order_seed: int):
    """The STAR layout with data_positions inserted in a shuffled order.

    If any scheduler behaviour leaked a dependence on dict insertion order,
    results would differ between insertion orders.
    """
    reference = star_layout(circuit.num_qubits, StarVariant.STAR)
    items = list(reference.data_positions.items())
    np.random.default_rng(order_seed).shuffle(items)
    from repro.fabric import GridLayout
    return GridLayout(reference.rows, reference.cols, dict(items),
                      name=reference.name)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(circuit=random_circuits(), seed=st.integers(0, 2 ** 16))
def test_kernel_event_ordering_is_deterministic(circuit, seed):
    """Identical (circuit, seed) -> identical traces, twice in a row, for
    every policy, and independent of dict insertion order in the layout."""
    config = SimulationConfig(mst_period=10, mst_latency=20)
    for scheduler in (RescqScheduler(), GreedyScheduler(),
                      AutoBraidScheduler()):
        runs = [scheduler.run(circuit, _shuffled_layout(circuit, order), config,
                              seed=seed)
                for order in (0, 1)]
        repeat = scheduler.run(circuit, _shuffled_layout(circuit, 0), config,
                               seed=seed)
        assert runs[0].traces == runs[1].traces == repeat.traces
        assert (runs[0].total_cycles == runs[1].total_cycles
                == repeat.total_cycles)
        assert runs[0].data_busy_cycles == runs[1].data_busy_cycles
