"""Fault-tolerance tests: membership state machine, fault injection, retry.

The e2e tests here run the real wire path — router, chaos proxy, shards —
via :class:`~repro.cluster.harness.ClusterHarness.with_faults`, with every
source of nondeterminism pinned: fault schedules are explicit
:class:`FaultPlan` objects (or seeded), the router's backoff jitter draws
from an injected seeded RNG, and membership transitions are driven by
calling ``probe_once`` directly rather than sleeping through health
intervals.
"""

import asyncio
import json
import socket
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import build_parser, main
from repro.cluster import (DEAD, LIVE, SUSPECT, ChaosProxy, ClusterHarness,
                           Fault, FaultPlan, ShardRouter, ShardSet,
                           membership_rows)

import random


def spec_payload(seeds=4, depth=3, name="chaos-test", **envelope):
    payload = {"name": name,
               "benchmarks": [f"scenario:clifford_t:n=4,depth={depth}"],
               "schedulers": ["rescq"], "seeds": seeds,
               "config": {"mst_period": 10, "mst_latency": 10}}
    if envelope:
        return {"spec": payload, **envelope}
    return payload


def split_ndjson(body):
    lines = body.decode().splitlines()
    return lines[:-1], json.loads(lines[-1])


def closed_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def fast_router_options(**extra):
    """Deterministic, test-speed retry knobs for a harness router."""
    options = {"rng": random.Random(1234), "backoff_base": 0.001,
               "backoff_cap": 0.01, "max_attempts": 6}
    options.update(extra)
    return options


class TestShardSet:
    def test_initial_members_are_live_and_routable(self):
        shards = ShardSet(["http://127.0.0.1:1", "http://127.0.0.1:2"])
        assert shards.urls == ("http://127.0.0.1:1", "http://127.0.0.1:2")
        assert shards.routable() == shards.urls
        assert shards.live_count == 2
        assert all(shards.get(url).state == LIVE for url in shards.urls)

    def test_validation_mirrors_the_router(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardSet([])
        with pytest.raises(ValueError, match="duplicate"):
            ShardSet(["http://127.0.0.1:1", "http://127.0.0.1:1/"])
        with pytest.raises(ValueError, match="http://"):
            ShardSet(["https://127.0.0.1:1"])

    def test_first_failure_suspects_but_keeps_routing(self):
        shards = ShardSet(["http://127.0.0.1:1", "http://127.0.0.1:2"])
        shards.record_failure("http://127.0.0.1:1", "connection refused")
        info = shards.get("http://127.0.0.1:1")
        assert info.state == SUSPECT
        assert info.last_error == "connection refused"
        # SUSPECT still routes: one blip must not move the shard's keys.
        assert "http://127.0.0.1:1" in shards.routable()

    def test_consecutive_failures_reach_dead(self):
        shards = ShardSet(["http://127.0.0.1:1", "http://127.0.0.1:2"],
                          dead_after=3)
        for _ in range(2):
            shards.record_failure("http://127.0.0.1:1")
        assert shards.get("http://127.0.0.1:1").state == SUSPECT
        shards.record_failure("http://127.0.0.1:1")
        assert shards.get("http://127.0.0.1:1").state == DEAD
        assert shards.routable() == ("http://127.0.0.1:2",)
        # DEAD shards keep being probed so they can rejoin.
        assert "http://127.0.0.1:1" in shards.probe_targets()

    def test_success_resets_the_failure_streak(self):
        shards = ShardSet(["http://127.0.0.1:1"], dead_after=3)
        shards.record_failure("http://127.0.0.1:1")
        shards.record_failure("http://127.0.0.1:1")
        shards.record_success("http://127.0.0.1:1")
        for _ in range(2):
            shards.record_failure("http://127.0.0.1:1")
        # The streak restarted after the success: still SUSPECT, not DEAD.
        assert shards.get("http://127.0.0.1:1").state == SUSPECT

    def test_dead_shard_rejoins_on_probe_success(self):
        shards = ShardSet(["http://127.0.0.1:1"], dead_after=1)
        shards.record_failure("http://127.0.0.1:1")
        assert shards.get("http://127.0.0.1:1").state == DEAD
        shards.record_success("http://127.0.0.1:1")
        info = shards.get("http://127.0.0.1:1")
        assert info.state == LIVE
        assert info.recoveries == 1
        assert info.consecutive_failures == 0

    def test_drain_and_readd(self):
        shards = ShardSet(["http://127.0.0.1:1", "http://127.0.0.1:2"])
        shards.drain("http://127.0.0.1:1")
        assert shards.routable() == ("http://127.0.0.1:2",)
        assert shards.probe_targets() == ("http://127.0.0.1:2",)
        # Draining keeps the member listed, and failures don't demote it.
        assert "http://127.0.0.1:1" in shards.urls
        shards.record_failure("http://127.0.0.1:1")
        assert shards.get("http://127.0.0.1:1").state == "draining"
        # Re-adding is the operator's "bring it back" verb.
        assert shards.add("http://127.0.0.1:1") is True
        assert shards.get("http://127.0.0.1:1").state == LIVE

    def test_add_is_idempotent_for_live_members(self):
        shards = ShardSet(["http://127.0.0.1:1"])
        assert shards.add("http://127.0.0.1:1") is False
        assert shards.add("http://127.0.0.1:2") is True
        assert len(shards) == 2

    def test_unknown_shard_raises(self):
        shards = ShardSet(["http://127.0.0.1:1"])
        with pytest.raises(KeyError, match="unknown shard"):
            shards.record_failure("http://127.0.0.1:9")

    def test_snapshot_flattens_to_cli_rows(self):
        shards = ShardSet(["http://127.0.0.1:1", "http://127.0.0.1:2"])
        shards.record_failure("http://127.0.0.1:2", "boom")
        rows = membership_rows(shards.snapshot())
        assert [row["shard"] for row in rows] == list(shards.urls)
        assert rows[1]["state"] == SUSPECT
        assert rows[1]["last_error"] == "boom"
        counts = shards.counts()
        assert counts[LIVE] == 1 and counts[SUSPECT] == 1


class TestFaultPlan:
    def test_seeded_plans_are_reproducible(self):
        first = FaultPlan.seeded(42, length=20)
        second = FaultPlan.seeded(42, length=20)
        assert first.faults == second.faults
        assert first.faults != FaultPlan.seeded(43, length=20).faults

    def test_cursor_consumes_in_order_then_passes_through(self):
        plan = FaultPlan([Fault("close"), None, Fault("stall", delay=0.5)])
        assert plan.next().kind == "close"
        assert plan.next() is None
        assert plan.next().kind == "stall"
        assert plan.next() is None  # past the end: clean pass-through
        assert plan.connections_seen == 4
        plan.reset()
        assert plan.next().kind == "close"

    def test_fault_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("explode")
        with pytest.raises(ValueError, match="rows"):
            Fault("truncate", rows=-1)
        with pytest.raises(ValueError, match="delay"):
            Fault("stall", delay=-1.0)

    def test_describe_names_the_schedule(self):
        plan = FaultPlan([Fault("truncate", rows=2), None,
                          Fault("rewrite", status=429, retry_after=3.0)])
        assert plan.describe() == ("plan[truncate(rows=2), pass, "
                                   "rewrite(status=429,retry_after=3)]")
        assert plan.fault_count == 2


class TestMidStreamRecovery:
    """The chaos proof and its variations, through the real wire path."""

    def test_truncate_mid_stream_recovers_byte_identical(self):
        # Shard 0's first connection dies after forwarding one data row;
        # the router must recover the rest on shard 1 and still produce
        # the byte-identical row stream a fault-free run produces.
        plan = FaultPlan([Fault("truncate", rows=1)])
        with ClusterHarness(shards=2, max_workers=2,
                            router_options=fast_router_options()) \
                .with_faults(plan) as cluster:
            payload = spec_payload(seeds=16, depth=5)
            status, _headers, faulted = cluster.request(
                "POST", "/experiments", payload)
            assert status == 200
            # The plan is exhausted now: the second run is fault-free.
            status, _headers, clean = cluster.request(
                "POST", "/experiments", payload)
            assert status == 200
            faulted_rows, faulted_summary = split_ndjson(faulted)
            clean_rows, clean_summary = split_ndjson(clean)
            assert faulted_rows == clean_rows  # byte-identical recovery
            assert len(faulted_rows) == 16
            seeds = [json.loads(row)["seed"] for row in faulted_rows]
            assert seeds == list(range(16))  # plan order preserved
            # Zero synthesized error records on either run.
            assert "errors" not in faulted_summary
            assert "errors" not in clean_summary
            assert cluster.proxies[0].applied[0].kind == "truncate"
            status, _headers, data = cluster.request("GET", "/stats")
            router_stats = json.loads(data)["router"]
            assert router_stats["recovered"] > 0
            assert router_stats["gave_up"] == 0
            # The mid-stream death fed the membership state machine.
            membership = json.loads(data)["membership"]
            proxied = cluster.routed_urls[0]
            assert membership["shards"][proxied]["failures"] >= 1

    def test_accept_then_close_fails_over_before_streaming(self):
        # A shard that accepts the connection and hangs up before
        # answering is a pre-head failure: re-routed, never client-visible.
        plan = FaultPlan([Fault("close")])
        with ClusterHarness(shards=2, max_workers=2,
                            router_options=fast_router_options()) \
                .with_faults(plan) as cluster:
            status, _headers, body = cluster.request(
                "POST", "/experiments", spec_payload(seeds=8, depth=4))
            assert status == 200
            rows, summary = split_ndjson(body)
            assert len(rows) == 8
            assert "errors" not in summary
            status, _headers, data = cluster.request("GET", "/stats")
            assert json.loads(data)["router"]["retried"] > 0

    def test_rewrite_500_fails_over_before_streaming(self):
        plan = FaultPlan([Fault("rewrite", status=500)])
        with ClusterHarness(shards=2, max_workers=2,
                            router_options=fast_router_options()) \
                .with_faults(plan) as cluster:
            status, _headers, body = cluster.request(
                "POST", "/experiments", spec_payload(seeds=8, depth=4))
            assert status == 200
            rows, summary = split_ndjson(body)
            assert len(rows) == 8
            assert "errors" not in summary

    def test_shard_429_propagates_largest_retry_after(self):
        # The router must honor the shard-provided Retry-After (not the
        # old hardcoded "1" fallback).
        plan = FaultPlan([Fault("rewrite", status=429, retry_after=7.0)])
        with ClusterHarness(shards=2, max_workers=2,
                            router_options=fast_router_options()) \
                .with_faults(plan) as cluster:
            status, headers, body = cluster.request(
                "POST", "/experiments", spec_payload(seeds=16, depth=4))
            assert status == 429
            assert headers["retry-after"] == "7"
            assert "error" in json.loads(body)

    def test_retry_after_is_capped_by_the_request_deadline(self):
        plan = FaultPlan([Fault("rewrite", status=429, retry_after=600.0)])
        options = fast_router_options(request_deadline=2.0)
        with ClusterHarness(shards=2, max_workers=2,
                            router_options=options) \
                .with_faults(plan) as cluster:
            status, headers, _body = cluster.request(
                "POST", "/experiments", spec_payload(seeds=16, depth=4))
            assert status == 429
            # 600s hint, 2s deadline: the hint is capped, not parroted.
            assert int(headers["retry-after"]) <= 2

    def test_exhausted_retries_surface_error_rows_in_plan_order(self):
        # One shard, every connection truncated before the first row:
        # recovery has nowhere to go, so after max_attempts the positions
        # come back as error records — the stream still completes, in
        # order, with the failure spelled out per position.
        plan = FaultPlan([Fault("truncate", rows=0)] * 10)
        options = fast_router_options(max_attempts=2)
        with ClusterHarness(shards=1, max_workers=2,
                            router_options=options) \
                .with_faults(plan) as cluster:
            status, _headers, body = cluster.request(
                "POST", "/experiments", spec_payload(seeds=4, depth=4))
            assert status == 200
            rows, summary = split_ndjson(body)
            assert len(rows) == 4
            records = [json.loads(row) for row in rows]
            assert all(record["type"] == "error" for record in records)
            assert all("not recovered" in record["message"]
                       for record in records)
            assert summary["errors"] == 4
            status, _headers, data = cluster.request("GET", "/stats")
            router_stats = json.loads(data)["router"]
            assert router_stats["gave_up"] == 4
            assert router_stats["stream_errors"] == 4

    def test_concurrent_identical_submissions_survive_shard_death(self):
        # SingleFlight x router-retry interaction: two identical
        # submissions in flight while shard 0 dies mid-stream for both.
        # The recovery re-asks shard 1, whose single-flight/cache layers
        # make the duplicate work converge — both clients must see the
        # complete, identical, error-free stream (a follower must never
        # observe the dead leader's failure).
        plan = FaultPlan([Fault("truncate", rows=0),
                          Fault("truncate", rows=0)])
        with ClusterHarness(shards=2, max_workers=2,
                            router_options=fast_router_options()) \
                .with_faults(plan) as cluster:
            payload = spec_payload(seeds=12, depth=6)
            results = {}

            def submit(key):
                results[key] = cluster.request("POST", "/experiments",
                                               payload)

            threads = [threading.Thread(target=submit, args=(key,))
                       for key in ("a", "b")]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert set(results) == {"a", "b"}
            bodies = []
            for status, _headers, body in results.values():
                assert status == 200
                rows, summary = split_ndjson(body)
                assert len(rows) == 12
                assert "errors" not in summary
                bodies.append(rows)
            assert bodies[0] == bodies[1]  # byte-identical across clients
            status, _headers, data = cluster.request("GET", "/stats")
            router_stats = json.loads(data)["router"]
            assert router_stats["gave_up"] == 0


@pytest.fixture(scope="module")
def chaos_cluster():
    """A 2-shard cluster with swappable fault plans on both shards."""
    harness = ClusterHarness(
        shards=2, max_workers=2,
        router_options=fast_router_options(max_attempts=8,
                                           dead_after=10_000),
    ).with_faults({0: FaultPlan.none(), 1: FaultPlan.none()})
    with harness as cluster:
        yield cluster


class TestFaultPlanProperty:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed0=st.integers(0, 2**16), seed1=st.integers(0, 2**16))
    def test_bounded_faults_still_yield_complete_ordered_stream(
            self, chaos_cluster, seed0, seed1):
        # Property: any FaultPlan with <= K faults per shard against
        # N=2 live shards still yields a complete, plan-ordered,
        # error-free result stream (K=3 < max_attempts=8).
        kinds = ("refuse", "close", "truncate", "stall")
        chaos_cluster.set_fault_plan(
            0, FaultPlan.seeded(seed0, length=3, kinds=kinds, rate=0.7))
        chaos_cluster.set_fault_plan(
            1, FaultPlan.seeded(seed1, length=3, kinds=kinds, rate=0.7))
        status, _headers, body = chaos_cluster.request(
            "POST", "/experiments", spec_payload(seeds=8, depth=3))
        assert status == 200
        rows, summary = split_ndjson(body)
        assert len(rows) == 8
        assert "errors" not in summary
        seeds = [json.loads(row)["seed"] for row in rows]
        assert seeds == list(range(8))
        assert summary["jobs"] == 8


class TestMembershipAdmin:
    @pytest.fixture(scope="class")
    def cluster(self):
        with ClusterHarness(shards=2, max_workers=2,
                            router_options=fast_router_options()) \
                as harness:
            yield harness

    def test_shards_endpoint_lists_membership(self, cluster):
        status, _headers, data = cluster.request("GET", "/shards")
        assert status == 200
        snapshot = json.loads(data)["membership"]
        assert set(snapshot["shards"]) == set(cluster.shard_urls)

    def test_drain_moves_all_placements_then_readd(self, cluster):
        drained = cluster.shard_urls[0]
        status, _headers, data = cluster.request(
            "POST", "/shards", {"action": "drain", "url": drained})
        assert status == 200
        assert json.loads(data)["membership"]["counts"]["draining"] == 1
        before = json.loads(
            cluster.shard_request(1, "GET", "/stats")[2])["jobs"]
        status, _headers, body = cluster.request(
            "POST", "/experiments",
            spec_payload(seeds=8, depth=9, name="drain-test"))
        assert status == 200
        rows, _summary = split_ndjson(body)
        assert len(rows) == 8
        after = json.loads(
            cluster.shard_request(1, "GET", "/stats")[2])["jobs"]
        assert after - before == 8  # every placement avoided the drain
        status, _headers, data = cluster.request(
            "POST", "/shards", {"action": "add", "url": drained})
        assert status == 200
        payload = json.loads(data)
        assert payload["changed"] is True
        assert payload["membership"]["shards"][drained]["state"] == LIVE

    def test_admin_rejects_malformed_requests(self, cluster):
        status, _headers, _data = cluster.request(
            "POST", "/shards", {"action": "explode", "url": "http://x:1"})
        assert status == 400
        status, _headers, _data = cluster.request(
            "POST", "/shards", {"action": "drain",
                                "url": "http://127.0.0.1:9"})
        assert status == 404
        status, _headers, _data = cluster.request(
            "POST", "/shards", {"action": "add", "url": "ftp://nope"})
        assert status == 400

    def test_added_shard_receives_placements(self, cluster):
        # Adding the shard back (previous test) is not enough — prove a
        # routed submission can still use the full fleet.
        status, _headers, body = cluster.request(
            "POST", "/experiments",
            spec_payload(seeds=16, depth=10, name="readd-test"))
        assert status == 200
        rows, _summary = split_ndjson(body)
        assert len(rows) == 16


class TestProbeTransitions:
    def test_probe_once_drives_the_state_machine_without_clocks(self):
        with ClusterHarness(shards=1, router=False) as cluster:
            live = cluster.shard_urls[0]
            dead = f"http://127.0.0.1:{closed_port()}"
            router = ShardRouter([live, dead], dead_after=2,
                                 probe_timeout=2.0)
            results = asyncio.run(router.probe_once())
            assert results[live][0] == "ok"
            assert results[dead][0].startswith("unreachable")
            assert router.membership.get(live).state == LIVE
            assert router.membership.get(dead).state == SUSPECT
            asyncio.run(router.probe_once())
            assert router.membership.get(dead).state == DEAD
            assert router.membership.routable() == (live,)
            # DEAD shards stay on the probe list so they can rejoin.
            assert dead in router.membership.probe_targets()

    def test_recovered_shard_rejoins_automatically(self):
        with ClusterHarness(shards=1, router=False) as cluster:
            live = cluster.shard_urls[0]
            router = ShardRouter([live], dead_after=1)
            router.membership.record_failure(live, "simulated outage")
            assert router.membership.get(live).state == DEAD
            asyncio.run(router.probe_once())
            info = router.membership.get(live)
            assert info.state == LIVE
            assert info.recoveries == 1


class TestChaosProxyUnit:
    def test_proxy_passes_through_cleanly_without_faults(self):
        with ClusterHarness(shards=1, router=False) as cluster:
            box = {}

            async def run():
                proxy = ChaosProxy("127.0.0.1", cluster.shard_ports[0],
                                   plan=FaultPlan.none())
                await proxy.start()
                box["port"] = proxy.port
                box["proxy"] = proxy

            cluster.call(run)
            status, _headers, body = ClusterHarness._request(
                box["port"], "GET", "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            assert box["proxy"].applied == [None]
            cluster.call(box["proxy"].stop)


class TestClusterCLI:
    def test_route_parser_gains_fault_tolerance_knobs(self):
        parser = build_parser()
        args = parser.parse_args(
            ["route", "http://127.0.0.1:1", "--health-interval", "0.5",
             "--dead-after", "5", "--max-attempts", "7",
             "--request-deadline", "30", "--retry-seed", "99"])
        assert args.health_interval == 0.5
        assert args.dead_after == 5
        assert args.max_attempts == 7
        assert args.request_deadline == 30.0
        assert args.retry_seed == 99

    def test_cluster_status_prints_membership_table(self, capsys):
        with ClusterHarness(shards=2, max_workers=2) as cluster:
            exit_code = main(["cluster", "status", cluster.router_url])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Shard membership" in out
        assert "2/2 live" in out
        for url in cluster.shard_urls:
            assert url in out

    def test_cluster_status_unreachable_router_exits_cleanly(self):
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["cluster", "status",
                  f"http://127.0.0.1:{closed_port()}"])
