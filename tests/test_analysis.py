"""Tests for the analysis layer: fidelity model, sweeps, experiments, reports."""

import math

import pytest

from repro import SimulationConfig
from repro.analysis import (
    ExecutionSummary,
    LogicalErrorModel,
    figure3_series,
    format_histogram,
    format_normalised_summary,
    format_table,
    latency_histograms,
    max_rotations,
    run_axis_sweep,
    run_execution_comparison,
)
from repro.scheduling import AutoBraidScheduler, RescqScheduler
from repro.workloads import dnn_circuit, qft_circuit

FAST = SimulationConfig(mst_period=10, mst_latency=10)


class TestFidelityModel:
    def test_logical_error_rate_decreases_with_distance(self):
        rates = [LogicalErrorModel(1e-3, d).logical_error_rate()
                 for d in (3, 5, 7, 9)]
        assert rates == sorted(rates, reverse=True)

    def test_max_rotations_monotone_in_error(self):
        assert max_rotations(0.9, 1e-5) > max_rotations(0.9, 1e-3)

    def test_max_rotations_validation(self):
        with pytest.raises(ValueError):
            max_rotations(1.5, 1e-3)
        assert max_rotations(0.9, 0.0) == math.inf
        assert max_rotations(0.9, 1.0) == 0.0

    def test_figure3_clifford_rz_beats_clifford_t(self):
        """Figure 3: Clifford+Rz admits far more rotations at every target."""
        for row in figure3_series():
            assert (row["max_rotations_clifford_rz"]
                    > row["max_rotations_clifford_t"])

    def test_figure3_rows_cover_all_combinations(self):
        rows = figure3_series(distances=(5, 7), target_fidelities=(0.5, 0.9))
        assert len(rows) == 4


class TestSweeps:
    def circuits(self):
        return [qft_circuit(5)]

    def schedulers(self):
        return [AutoBraidScheduler(), RescqScheduler()]

    def test_distance_sweep_rows(self):
        rows = run_axis_sweep("distance", self.schedulers(), self.circuits(),
                              values=(5, 7), seeds=1)
        assert len(rows) == 4
        assert {row.parameter for row in rows} == {"distance"}
        assert all(row.mean_cycles > 0 for row in rows)

    def test_error_rate_sweep_rows(self):
        rows = run_axis_sweep("error-rate", self.schedulers(),
                              self.circuits(), values=(1e-3, 1e-4), seeds=1)
        assert len(rows) == 4
        assert {row.value for row in rows} == {1e-3, 1e-4}

    def test_mst_period_sweep_rows(self):
        rows = run_axis_sweep("mst-period", [RescqScheduler()],
                              self.circuits(), values=(25, 100), seeds=1)
        assert len(rows) == 2
        assert all(row.scheduler == "rescq" for row in rows)

    def test_compression_sweep_rescq_still_wins_when_constrained(self):
        """Figure 14 / contribution 3: even in the most constrained grids
        RESCQ keeps a clear advantage over the static baseline."""
        circuit = dnn_circuit(8, layers=2)
        rows = run_axis_sweep("compression", self.schedulers(), [circuit],
                              values=(0.0, 1.0), seeds=2)
        by_key = {(row.scheduler, row.value): row.mean_cycles for row in rows}
        assert by_key[("rescq", 0.0)] < by_key[("autobraid", 0.0)]
        assert (by_key[("autobraid", 1.0)] / by_key[("rescq", 1.0)]) > 1.2
        # Compression costs both schedulers cycles (reduced ancilla budget).
        assert by_key[("rescq", 1.0)] >= by_key[("rescq", 0.0)]

    def test_sweep_row_as_dict(self):
        rows = run_axis_sweep("distance", [RescqScheduler()], self.circuits(),
                              values=(7,), seeds=1)
        payload = rows[0].as_dict()
        assert payload["benchmark"] == "qft_n5"
        assert "distance" in payload


class TestExperiments:
    def test_execution_comparison_produces_speedup(self):
        circuits = [qft_circuit(5), dnn_circuit(6, layers=2)]
        summary = run_execution_comparison(circuits, config=FAST, seeds=2)
        assert set(summary.cycles) == {"qft_n5", "dnn_n6"}
        speedup = summary.geomean_speedup("rescq", over="autobraid")
        assert speedup > 1.0

    def test_normalised_table_reference_is_one(self):
        summary = run_execution_comparison([qft_circuit(5)], config=FAST,
                                            seeds=1)
        normalised = summary.normalised()
        assert normalised["qft_n5"]["autobraid"] == pytest.approx(1.0)

    def test_latency_histograms_shape(self):
        histograms = latency_histograms([qft_circuit(5)], config=FAST, seeds=1)
        assert set(histograms) == {"greedy", "autobraid", "rescq"}
        for per_kind in histograms.values():
            assert set(per_kind) == {"cnot", "rz"}
            assert sum(per_kind["cnot"].values()) > 0

    def test_rescq_latencies_smaller_than_baseline(self):
        """Figure 5's qualitative claim: RESCQ's CNOT latency distribution is
        concentrated at fewer cycles than the baseline's."""
        histograms = latency_histograms([dnn_circuit(6, layers=2)],
                                        config=FAST, seeds=2)

        def mean_of(hist):
            total = sum(hist.values())
            return sum(k * v for k, v in hist.items()) / total

        assert (mean_of(histograms["rescq"]["rz"])
                < mean_of(histograms["autobraid"]["rz"]))

    def test_summary_handles_missing_baseline(self):
        summary = ExecutionSummary(baseline="autobraid")
        summary.cycles["x"] = {"rescq": 10.0}
        assert summary.normalised() == {}
        assert summary.geomean_speedup("rescq") == 0.0


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="T")

    def test_format_histogram(self):
        text = format_histogram({2: 10, 5: 1}, title="H")
        assert "2 cycles" in text and "#" in text

    def test_format_histogram_empty(self):
        assert "(empty)" in format_histogram({})

    def test_format_normalised_summary(self):
        summary = ExecutionSummary(baseline="autobraid")
        summary.cycles["bench"] = {"autobraid": 100.0, "rescq": 50.0}
        text = format_normalised_summary(summary)
        assert "bench" in text
        assert "2.00x" in text
