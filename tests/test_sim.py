"""Tests for simulation configuration, results and runner helpers."""

import pytest

from repro import SimulationConfig, default_layout
from repro.exec import ExecutionEngine, plan_jobs
from repro.rus import InjectionStrategy
from repro.scheduling import AutoBraidScheduler, RescqScheduler
from repro.sim import (
    GateTrace,
    SimulationResult,
    aggregate_comparison,
    aggregate_results,
    geometric_mean,
)
from repro.workloads import qft_circuit


class TestConfig:
    def test_defaults_match_headline_configuration(self):
        config = SimulationConfig()
        assert config.distance == 7
        assert config.physical_error_rate == 1e-4
        assert config.activity_window == 100
        assert config.mst_period == 25
        assert config.injection_strategy is InjectionStrategy.ZZ

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(distance=6)
        with pytest.raises(ValueError):
            SimulationConfig(physical_error_rate=0.7)
        with pytest.raises(ValueError):
            SimulationConfig(mst_period=0)
        with pytest.raises(ValueError):
            SimulationConfig(mst_latency=-5)
        with pytest.raises(ValueError):
            SimulationConfig(max_parallel_preparations=0)

    def test_with_updates_returns_new_object(self):
        config = SimulationConfig()
        updated = config.with_updates(distance=9)
        assert updated.distance == 9
        assert config.distance == 7

    def test_preparation_model_uses_config_values(self):
        config = SimulationConfig(distance=9, physical_error_rate=1e-3)
        model = config.preparation_model()
        assert model.distance == 9
        assert model.physical_error_rate == 1e-3

    def test_describe_mentions_key_parameters(self):
        text = SimulationConfig(distance=9, mst_period=50).describe()
        assert "d=9" in text and "k=50" in text


class TestResults:
    def make_result(self):
        traces = [
            GateTrace(0, "cnot", (0, 1), scheduled_cycle=0, start_cycle=0,
                      end_cycle=2),
            GateTrace(1, "rz", (0,), scheduled_cycle=2, start_cycle=3,
                      end_cycle=8, injections=2, preparation_attempts=3),
            GateTrace(2, "cnot", (1, 2), scheduled_cycle=2, start_cycle=5,
                      end_cycle=10, edge_rotations=1),
        ]
        return SimulationResult("bench", "rescq", seed=0, total_cycles=10,
                                num_qubits=3, traces=traces,
                                data_busy_cycles={0: 7, 1: 7, 2: 5})

    def test_trace_derived_quantities(self):
        trace = self.make_result().traces[1]
        assert trace.latency_after_schedule == 6
        assert trace.service_time == 5
        assert trace.queueing_delay == 1

    def test_latency_filters_by_kind(self):
        result = self.make_result()
        assert result.latencies("cnot") == [2, 8]
        assert result.latencies("rz") == [6]
        assert result.mean_latency("cnot") == 5.0

    def test_latency_histogram_clamps(self):
        result = self.make_result()
        histogram = result.latency_histogram("cnot", max_cycles=5)
        assert histogram == {2: 1, 5: 1}

    def test_idle_fraction(self):
        result = self.make_result()
        expected = 1 - (7 + 7 + 5) / (3 * 10)
        assert result.idle_fraction() == pytest.approx(expected)

    def test_counters(self):
        result = self.make_result()
        assert result.total_injections() == 2
        assert result.total_edge_rotations() == 1
        assert result.num_gates == 3

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)

    def test_aggregate_results(self):
        results = [self.make_result() for _ in range(3)]
        results[1].total_cycles = 20
        aggregate = aggregate_results(results)
        assert aggregate["runs"] == 3
        assert aggregate["min"] == 10 and aggregate["max"] == 20


class TestRunner:
    def test_default_layout_is_star_grid(self):
        circuit = qft_circuit(5)
        layout = default_layout(circuit)
        assert layout.num_data_qubits == 5
        # Non-square qubit counts leave whole-ancilla filler blocks, so the
        # ratio is at least the STAR block's 3 ancilla per data qubit.
        assert layout.ancilla_per_data >= 3.0

    def test_default_layout_with_compression(self):
        circuit = qft_circuit(5)
        layout = default_layout(circuit, compression=1.0)
        assert layout.num_ancilla < default_layout(circuit).num_ancilla

    def _comparison(self, seeds):
        circuit = qft_circuit(5)
        config = SimulationConfig(mst_period=10, mst_latency=10)
        jobs = plan_jobs([AutoBraidScheduler(), RescqScheduler()], circuit,
                         config, default_layout(circuit), seeds)
        return aggregate_comparison(jobs, ExecutionEngine().run(jobs))

    def test_comparison_shares_layout_and_seeds(self):
        rows = self._comparison(seeds=2)
        assert set(rows) == {"autobraid", "rescq"}
        for row in rows.values():
            assert row.runs == 2
            assert row.min_cycles <= row.mean_cycles <= row.max_cycles
            assert 0.0 <= row.mean_idle_fraction <= 1.0

    def test_normalised_to_reference(self):
        rows = self._comparison(seeds=1)
        ratio = rows["rescq"].normalised_to(rows["autobraid"])
        assert 0.0 < ratio <= 1.5
