"""Tests for the Table 3 workload generators and the benchmark registry."""


import pytest

from repro.circuits import BASIS, GateType
from repro.workloads import (
    TABLE3,
    benchmark_names,
    dnn_circuit,
    gcm_circuit,
    get_benchmark,
    hamiltonian_simulation_circuit,
    ising_circuit,
    multiplier_circuit,
    multiplier_width_for_qubits,
    qaoa_fermionic_swap_circuit,
    qaoa_vanilla_circuit,
    qft_circuit,
    qugan_circuit,
    random_regular_edges,
    representative_benchmarks,
    table3_rows,
    vqe_circuit,
    wstate_circuit,
)


def _in_basis(circuit):
    return all(gate.gate_type in BASIS or gate.gate_type is GateType.RZ
               for gate in circuit)


class TestGeneratorsProduceBasisCircuits:
    @pytest.mark.parametrize("builder", [
        lambda: ising_circuit(10),
        lambda: qft_circuit(8),
        lambda: multiplier_circuit(13),
        lambda: qugan_circuit(9),
        lambda: gcm_circuit(8, generator_terms=6),
        lambda: vqe_circuit(8),
        lambda: dnn_circuit(8, layers=2),
        lambda: wstate_circuit(8),
        lambda: hamiltonian_simulation_circuit(8),
        lambda: qaoa_vanilla_circuit(8),
        lambda: qaoa_fermionic_swap_circuit(8, rounds=1),
    ])
    def test_basis_only(self, builder):
        circuit = builder()
        assert len(circuit) > 0
        assert _in_basis(circuit)

    def test_untranspiled_circuits_keep_high_level_gates(self):
        raw = ising_circuit(6, transpile=False)
        assert any(g.gate_type is GateType.RZZ for g in raw)


class TestStructuralProperties:
    def test_ising_is_wide(self):
        stats = ising_circuit(20).stats()
        # parallel circuit: depth far below gate count
        assert stats.depth < stats.total_gates / 2

    def test_qft_is_sequential(self):
        stats = qft_circuit(10).stats()
        assert stats.depth > stats.total_gates / 4

    def test_qft_cnot_count_exact(self):
        # exact QFT: 2 CNOTs per controlled phase, n(n-1)/2 phases
        stats = qft_circuit(10).stats()
        assert stats.num_cnot == 10 * 9

    def test_qft_approximation_reduces_gates(self):
        full = qft_circuit(12).stats().num_cnot
        approx = qft_circuit(12, approximation_degree=6).stats().num_cnot
        assert approx < full

    def test_dnn_is_rotation_dominated(self):
        stats = dnn_circuit(16, layers=8).stats()
        assert stats.rz_to_cnot_ratio > 4.0

    def test_vqe_has_few_cnots(self):
        stats = vqe_circuit(13, layers=2).stats()
        assert stats.num_cnot < stats.num_rz / 3

    def test_wstate_scaling(self):
        stats = wstate_circuit(27).stats()
        assert stats.num_cnot == 3 * 26  # 2 per controlled-Ry + 1 cascade CNOT

    def test_multiplier_width(self):
        assert multiplier_width_for_qubits(45) == 11
        with pytest.raises(ValueError):
            multiplier_width_for_qubits(3)

    def test_fermionic_swap_has_more_cnots_than_vanilla(self):
        vanilla = qaoa_vanilla_circuit(12, rounds=1).stats()
        swap = qaoa_fermionic_swap_circuit(12, rounds=1).stats()
        assert swap.num_cnot > vanilla.num_cnot

    def test_random_regular_edges_have_expected_count(self):
        edges = random_regular_edges(12, degree=3)
        assert len(edges) == 18
        assert all(0 <= a < 12 and 0 <= b < 12 and a != b for a, b in edges)

    def test_generators_reject_degenerate_sizes(self):
        with pytest.raises(ValueError):
            ising_circuit(1)
        with pytest.raises(ValueError):
            wstate_circuit(1)
        with pytest.raises(ValueError):
            qugan_circuit(3)


class TestRegistry:
    def test_all_rows_present(self):
        assert len(TABLE3) == 23
        assert "qft_n160" in benchmark_names()
        assert len(benchmark_names("supermarq")) == 6

    def test_get_benchmark_round_trip(self):
        spec = get_benchmark("dnn_n16")
        circuit = spec.build()
        assert circuit.name == "dnn_n16"
        assert circuit.num_qubits == 16

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("not_a_benchmark")

    def test_representative_benchmarks(self):
        names = [spec.name for spec in representative_benchmarks()]
        assert names == ["dnn_n16", "gcm_n13", "qft_n160"]
        fast = [spec.name for spec in representative_benchmarks(fast=True)]
        assert "qft_n18" in fast

    def test_qubit_counts_match_table3(self):
        for spec in TABLE3:
            if spec.num_qubits <= 50:  # keep the test fast
                assert spec.build().num_qubits == spec.num_qubits

    def test_generated_ratios_track_paper_ratios(self):
        """The Rz:CNOT ratio of each generated circuit should be within a
        factor of ~2 of the paper's ratio (the property the suite was chosen
        to span, Section 5.1)."""
        for spec in TABLE3:
            if spec.num_qubits > 50:
                continue
            stats = spec.build().stats()
            paper_ratio = spec.paper_rz / spec.paper_cnot
            generated_ratio = stats.rz_to_cnot_ratio
            assert generated_ratio == pytest.approx(paper_ratio, rel=1.2), spec.name

    def test_table3_rows_report_both_counts(self):
        rows = table3_rows()
        assert len(rows) == len(TABLE3)
        for row in rows:
            assert row["generated_rz"] > 0
            assert row["paper_rz"] > 0
