"""Tests for the RUS preparation/injection models and Clifford+T comparison."""

import math

import numpy as np
import pytest

from repro.rus import (
    ComparisonResult,
    InjectionModel,
    InjectionStrategy,
    PreparationModel,
    RzCostModel,
    TFactoryModel,
    compare_rz_vs_t,
    expected_injections,
)


class TestPreparationModel:
    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            PreparationModel(distance=4, physical_error_rate=1e-4)
        with pytest.raises(ValueError):
            PreparationModel(distance=7, physical_error_rate=0.9)

    def test_subsystem_count(self):
        model = PreparationModel(7, 1e-4)
        assert model.num_subsystem_codes == 24

    def test_probabilities_in_range(self):
        model = PreparationModel(7, 1e-3)
        for value in (model.subsystem_success_probability,
                      model.first_round_success_probability,
                      model.expansion_success_probability,
                      model.attempt_success_probability):
            assert 0.0 < value <= 1.0

    def test_expected_cycles_decrease_with_distance(self):
        """Figure 16 (left): larger d -> fewer lattice-surgery cycles."""
        cycles = [PreparationModel(d, 1e-4).expected_cycles()
                  for d in (5, 7, 9, 11, 13)]
        assert cycles == sorted(cycles, reverse=True)

    def test_expected_attempts_increase_with_distance(self):
        """Figure 16 (right): larger d -> more post-selection attempts."""
        attempts = [PreparationModel(d, 1e-3).expected_attempts()
                    for d in (5, 7, 9, 11, 13)]
        assert attempts == sorted(attempts)

    def test_expected_cycles_decrease_with_lower_error_rate(self):
        worse = PreparationModel(7, 1e-3).expected_cycles()
        better = PreparationModel(7, 1e-5).expected_cycles()
        assert better < worse

    def test_worst_corner_near_paper_value(self):
        """Appendix A.2 uses ~2.2 cycles for the worst-case preparation."""
        worst = PreparationModel(5, 1e-3).expected_cycles()
        assert 1.5 < worst < 3.5

    def test_parallel_preparation_is_faster(self):
        model = PreparationModel(7, 1e-3)
        assert model.expected_cycles_parallel(3) < model.expected_cycles()
        with pytest.raises(ValueError):
            model.expected_cycles_parallel(0)

    def test_sampling_statistics_match_expectation(self):
        model = PreparationModel(7, 1e-3)
        rng = np.random.default_rng(0)
        samples = [model.sample_attempts(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(model.expected_attempts(),
                                                 rel=0.1)

    def test_sample_cycles_at_least_one(self):
        model = PreparationModel(13, 1e-5)
        rng = np.random.default_rng(1)
        assert all(model.sample_cycles(rng) >= 1 for _ in range(100))

    def test_with_updates(self):
        model = PreparationModel(7, 1e-4)
        assert model.with_distance(9).distance == 9
        assert model.with_error_rate(1e-3).physical_error_rate == 1e-3


class TestInjection:
    def test_strategy_table1(self):
        assert InjectionStrategy.ZZ.exposed_edge == "Z"
        assert InjectionStrategy.CNOT.exposed_edge == "X"
        assert InjectionStrategy.ZZ.ancillas_required == 1
        assert InjectionStrategy.CNOT.ancillas_required == 2
        assert InjectionStrategy.ZZ.cycles == 1
        assert InjectionStrategy.CNOT.cycles == 2

    def test_expected_injections_generic_angle(self):
        """Equation 1: the expectation is exactly 2 for generic angles."""
        assert expected_injections() == pytest.approx(2.0)
        assert expected_injections(0.3) == pytest.approx(2.0, abs=1e-6)

    def test_expected_injections_truncated_for_t_gate(self):
        # T gate: after one doubling the correction (S) is Clifford, so the
        # chain always stops after exactly one injection.
        value = expected_injections(math.pi / 4)
        assert value == pytest.approx(1.0)

    def test_expected_injections_truncated_for_sqrt_t_gate(self):
        value = expected_injections(math.pi / 8)
        assert value == pytest.approx(1 * 0.5 + 2 * 0.25 + 2 * 0.25)

    def test_expected_injections_zero_for_clifford(self):
        assert expected_injections(math.pi / 2) == 0.0

    def test_sample_count_statistics(self):
        model = InjectionModel()
        rng = np.random.default_rng(0)
        samples = [model.sample_injection_count(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.1)

    def test_sample_count_truncates_for_t_angle(self):
        model = InjectionModel()
        rng = np.random.default_rng(0)
        samples = [model.sample_injection_count(rng, theta=math.pi / 4)
                   for _ in range(500)]
        assert max(samples) <= 2

    def test_sample_count_zero_for_clifford(self):
        model = InjectionModel()
        rng = np.random.default_rng(0)
        assert model.sample_injection_count(rng, theta=math.pi) == 0

    def test_general_success_probability_expectation(self):
        model = InjectionModel(success_probability=1.0)
        assert model.expected_injection_count() == pytest.approx(1.0)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            InjectionModel(success_probability=0.0)


class TestCliffordTComparison:
    def test_rz_cost_model_matches_appendix_arithmetic(self):
        prep = PreparationModel(5, 1e-3)
        model = RzCostModel(prep, InjectionModel(InjectionStrategy.CNOT))
        expected = 2 * (prep.expected_cycles() + 2)
        assert model.expected_cycles() == pytest.approx(expected)

    def test_t_factory_range(self):
        best, worst = TFactoryModel().rz_cycles_range()
        assert best == 200
        assert worst == 1300

    def test_t_count_for_precision(self):
        assert TFactoryModel.t_count_for_precision(1e-10) >= 90
        with pytest.raises(ValueError):
            TFactoryModel.t_count_for_precision(2.0)

    def test_overhead_range_matches_paper(self):
        """Appendix A.2: Clifford+T is 20x-150x more expensive per rotation."""
        result = compare_rz_vs_t()
        assert isinstance(result, ComparisonResult)
        assert 10 <= result.overhead_best <= 40
        assert 100 <= result.overhead_worst <= 250
        assert result.overhead_worst > result.overhead_best
