"""Tests for JSON/CSV result export (the artifact's log-file equivalent)."""

import json

import pytest

from repro import SimulationConfig, default_layout
from repro.analysis.export import (
    result_from_dict,
    result_to_dict,
    results_from_json,
    results_to_json,
    traces_to_csv,
)
from repro.scheduling import RescqScheduler
from repro.workloads import vqe_circuit


@pytest.fixture(scope="module")
def sample_result():
    circuit = vqe_circuit(6)
    config = SimulationConfig(mst_period=10, mst_latency=10)
    return RescqScheduler().run(circuit, default_layout(circuit), config, seed=4)


class TestJsonRoundTrip:
    def test_dict_round_trip_preserves_everything(self, sample_result):
        restored = result_from_dict(result_to_dict(sample_result))
        assert restored.benchmark == sample_result.benchmark
        assert restored.total_cycles == sample_result.total_cycles
        assert restored.num_qubits == sample_result.num_qubits
        assert len(restored.traces) == len(sample_result.traces)
        assert restored.traces[0] == sample_result.traces[0]
        assert restored.data_busy_cycles == sample_result.data_busy_cycles

    def test_json_round_trip(self, sample_result):
        text = results_to_json([sample_result, sample_result])
        parsed = results_from_json(text)
        assert len(parsed) == 2
        assert parsed[0].total_cycles == sample_result.total_cycles

    def test_json_is_valid_and_compact_option(self, sample_result):
        text = results_to_json([sample_result], indent=None)
        assert json.loads(text)

    def test_derived_metrics_survive_round_trip(self, sample_result):
        restored = result_from_dict(result_to_dict(sample_result))
        assert restored.idle_fraction() == pytest.approx(
            sample_result.idle_fraction())
        assert restored.latency_histogram("rz") == sample_result.latency_histogram("rz")

    def test_results_from_json_rejects_non_list(self):
        with pytest.raises(ValueError):
            results_from_json('{"not": "a list"}')


class TestCsv:
    def test_csv_has_one_row_per_gate(self, sample_result):
        text = traces_to_csv(sample_result)
        lines = [line for line in text.splitlines() if line]
        assert len(lines) == len(sample_result.traces) + 1

    def test_csv_header_columns(self, sample_result):
        header = traces_to_csv(sample_result).splitlines()[0].split(",")
        assert "latency_after_schedule" in header
        assert "injections" in header
