"""Unit tests for the Circuit container and its analyses."""

import math

import pytest

from repro.circuits import Circuit, GateType, barrier, cnot, rz


class TestConstruction:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_rejects_out_of_range_operands(self):
        circuit = Circuit(2)
        with pytest.raises(ValueError):
            circuit.append(cnot(0, 5))

    def test_builder_methods_chain(self):
        circuit = Circuit(2).h(0).rz(0, 0.3).cnot(0, 1)
        assert len(circuit) == 3
        assert [g.gate_type for g in circuit] == [GateType.H, GateType.RZ,
                                                  GateType.CNOT]

    def test_equality(self):
        a = Circuit(2).h(0).cnot(0, 1)
        b = Circuit(2).h(0).cnot(0, 1)
        c = Circuit(2).h(1).cnot(0, 1)
        assert a == b
        assert a != c

    def test_copy_is_independent(self):
        a = Circuit(2).h(0)
        b = a.copy()
        b.cnot(0, 1)
        assert len(a) == 1
        assert len(b) == 2


class TestDepthAndLayers:
    def test_depth_of_sequential_chain(self):
        circuit = Circuit(1).h(0).rz(0, 0.2).h(0)
        assert circuit.depth() == 3

    def test_depth_of_parallel_gates(self):
        circuit = Circuit(4)
        for qubit in range(4):
            circuit.h(qubit)
        assert circuit.depth() == 1

    def test_layers_respect_dependencies(self):
        circuit = Circuit(3).h(0).h(1).cnot(0, 1).rz(2, 0.5)
        layers = circuit.layers()
        assert layers[0] == [0, 1, 3]
        assert layers[1] == [2]

    def test_barrier_forces_synchronisation(self):
        circuit = Circuit(2)
        circuit.h(0)
        circuit.append(barrier())
        circuit.h(1)
        layers = circuit.layers()
        assert len(layers) == 2

    def test_remaining_depth_counts_critical_path(self):
        circuit = Circuit(2).h(0).cnot(0, 1).rz(1, 0.3)
        remaining = circuit.remaining_depth_per_gate()
        assert remaining[0] == 3  # h -> cnot -> rz
        assert remaining[1] == 2
        assert remaining[2] == 1


class TestStats:
    def test_counts_only_non_clifford_rz(self):
        circuit = Circuit(2).rz(0, 0.3).rz(0, math.pi / 2).cnot(0, 1)
        stats = circuit.stats()
        assert stats.num_rz == 1
        assert stats.num_cnot == 1

    def test_rz_to_cnot_ratio(self):
        circuit = Circuit(2).rz(0, 0.1).rz(1, 0.2).rz(0, 0.3).cnot(0, 1)
        assert circuit.stats().rz_to_cnot_ratio == pytest.approx(3.0)

    def test_ratio_with_no_cnots_is_infinite(self):
        circuit = Circuit(1).rz(0, 0.1)
        assert circuit.stats().rz_to_cnot_ratio == math.inf

    def test_as_row_has_expected_keys(self):
        row = Circuit(2).h(0).cnot(0, 1).stats().as_row()
        assert set(row) == {"qubits", "rz", "cnot", "total", "depth",
                            "rz_per_cnot"}


class TestTransformations:
    def test_without_free_gates_drops_paulis_and_clifford_rz(self):
        circuit = Circuit(2).x(0).rz(0, math.pi).rz(0, 0.4).cnot(0, 1)
        filtered = circuit.without_free_gates()
        assert len(filtered) == 2
        assert filtered[0].gate_type is GateType.RZ
        assert filtered[1].gate_type is GateType.CNOT

    def test_relabeled_moves_operands(self):
        circuit = Circuit(2).cnot(0, 1)
        relabeled = circuit.relabeled([5, 3])
        assert relabeled[0].qubits == (5, 3)
        assert relabeled.num_qubits == 6

    def test_relabeled_requires_full_mapping(self):
        with pytest.raises(ValueError):
            Circuit(3).h(2).relabeled([0, 1])

    def test_used_qubits(self):
        circuit = Circuit(5).h(1).cnot(1, 3)
        assert circuit.used_qubits() == (1, 3)
