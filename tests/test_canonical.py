"""Tests for canonical JSON: the byte-stable serialisation behind caching."""

import json
import math

import pytest

from repro.api import ExperimentSpec
from repro.canonical import CanonicalizationError, canonical_dumps, content_hash


class TestCanonicalDumps:
    def test_keys_are_sorted_regardless_of_insertion_order(self):
        forward = {"a": 1, "b": 2, "c": {"x": 1, "y": 2}}
        backward = {"c": {"y": 2, "x": 1}, "b": 2, "a": 1}
        assert canonical_dumps(forward) == canonical_dumps(backward)
        assert canonical_dumps(forward) == '{"a":1,"b":2,"c":{"x":1,"y":2}}'

    def test_compact_separators_by_default(self):
        assert canonical_dumps({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_indent_mode_still_sorts(self):
        text = canonical_dumps({"b": 1, "a": 2}, indent=2)
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 2, "b": 1}

    def test_negative_zero_normalised(self):
        assert canonical_dumps(-0.0) == canonical_dumps(0.0) == "0.0"
        assert canonical_dumps({"v": [-0.0]}) == '{"v":[0.0]}'

    def test_tuples_serialise_like_lists(self):
        assert canonical_dumps((1, 2)) == canonical_dumps([1, 2])

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_floats_rejected(self, bad):
        with pytest.raises(CanonicalizationError):
            canonical_dumps(bad)

    def test_error_names_the_offending_path(self):
        with pytest.raises(CanonicalizationError, match=r"\$\.a\[1\]\.b"):
            canonical_dumps({"a": [0, {"b": math.nan}]})

    def test_non_string_keys_rejected(self):
        with pytest.raises(CanonicalizationError, match="non-string key"):
            canonical_dumps({1: "x"})

    def test_non_serialisable_values_rejected(self):
        with pytest.raises(CanonicalizationError, match="not.*serialisable"):
            canonical_dumps({"f": object()})

    def test_bools_are_not_confused_with_ints(self):
        assert canonical_dumps(True) == "true"
        assert canonical_dumps(1) == "1"

    def test_output_is_ascii_only(self):
        text = canonical_dumps({"s": "café"})
        assert text == '{"s":"caf\\u00e9"}'
        assert text.isascii()


class TestContentHash:
    def test_equal_values_hash_identically(self):
        assert content_hash({"a": 1, "b": 2.5}) == content_hash(
            {"b": 2.5, "a": 1})

    def test_different_values_hash_differently(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})

    def test_hash_is_sha256_hex(self):
        digest = content_hash([])
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex


class TestApiSerialisationIsCanonical:
    """ExperimentSpec round-trips write sorted-key canonical JSON, so two
    equal specs always serialise to identical bytes (the property the
    single-flight table and both cache backends key on)."""

    def spec(self, **overrides):
        payload = {"name": "t", "benchmarks": ["VQE_n13"],
                   "schedulers": ["rescq"], "seeds": 1,
                   "config": {"mst_period": 10, "mst_latency": 10}}
        payload.update(overrides)
        return ExperimentSpec.from_dict(payload)

    def test_spec_json_has_sorted_keys(self):
        text = self.spec().to_json()
        payload = json.loads(text)
        assert list(payload) == sorted(payload)

    def test_spec_json_is_insertion_order_independent(self):
        a = self.spec()
        b = ExperimentSpec.from_dict(dict(reversed(list(
            json.loads(a.to_json()).items()))))
        assert a.to_json() == b.to_json()

    def test_resultset_json_is_canonical_and_repeatable(self):
        from repro.api import run_experiment
        text = run_experiment(self.spec()).to_json()
        rows = json.loads(text)
        assert rows
        for row in rows:
            assert list(row) == sorted(row)
        # Re-running the same spec exports byte-identical documents.
        assert run_experiment(self.spec()).to_json() == text
