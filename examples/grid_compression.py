#!/usr/bin/env python3
"""Hardware/software co-design: trading ancilla for space (Section 5.3).

Sweeps the STAR grid from 0% to 100% compression for a rotation-heavy
workload, printing the achieved ancilla-per-data ratio, the resulting cycle
counts for the static baseline and RESCQ, and an ASCII rendering of the
compressed grid (the Figure 15 picture).

Run with::

    python examples/grid_compression.py
"""

from repro import SimulationConfig
from repro.analysis import format_table
from repro.api import ResultSet
from repro.exec import ExecutionEngine, plan_jobs
from repro.fabric import StarVariant, compress_layout, star_layout
from repro.scheduling import AutoBraidScheduler, RescqScheduler
from repro.workloads import dnn_circuit


def main() -> None:
    circuit = dnn_circuit(8, layers=3)
    config = SimulationConfig()
    base_layout = star_layout(circuit.num_qubits, StarVariant.STAR)
    schedulers = [AutoBraidScheduler(), RescqScheduler()]
    engine = ExecutionEngine()

    # Unregistered circuit + hand-built layouts: plan jobs explicitly and
    # fold them through ResultSet (the declarative spec path needs names).
    rows = []
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        layout, report = compress_layout(base_layout, fraction, seed=13)
        jobs = plan_jobs(schedulers, circuit, config, layout, seeds=3)
        point = ResultSet.from_jobs(jobs, engine.run(jobs))
        cells = {name: cell.mean_cycles
                 for name, cell in point.comparison_rows().items()}
        rows.append({
            "requested_compression": fraction,
            "achieved_compression": round(report.achieved_fraction, 2),
            "ancilla_per_data": round(layout.ancilla_per_data, 2),
            "autobraid_cycles": round(cells["autobraid"], 1),
            "rescq_cycles": round(cells["rescq"], 1),
            "rescq_advantage": round(cells["autobraid"] / cells["rescq"], 2),
        })
        if fraction in (0.0, 1.0):
            print(f"--- grid at {int(fraction * 100)}% requested compression "
                  f"(D = data, . = ancilla) ---")
            print(layout.ascii_art())
            print()

    print(format_table(rows, title=f"Grid compression sweep for {circuit.name} "
                                   f"({config.describe()})"))
    most_constrained = rows[-1]
    print(f"RESCQ advantage on the most constrained grid: "
          f"{most_constrained['rescq_advantage']:.2f}x")


if __name__ == "__main__":
    main()
