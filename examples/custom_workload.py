#!/usr/bin/env python3
"""Bring your own circuit: import, transpile, export and schedule a workload.

Demonstrates the full front-end path a downstream user would follow:

1. build (or parse) a circuit containing high-level gates (here a small
   Trotterised chemistry-style circuit with RZZ / RY / CCX gates);
2. lower it into the Clifford+Rz scheduler basis;
3. export/import it through the artifact text format of the paper's appendix
   B.7 (the same format the original simulator consumes);
4. register it as a named benchmark, so experiment specs (and the
   ``rescq exp``/``rescq run`` CLI) can address it like any Table 3 row;
5. run it with RESCQ through the declarative API and inspect per-gate traces.

Run with::

    python examples/custom_workload.py
"""

import math

from repro.analysis import format_table
from repro.api import ExperimentSpec, run_experiment
from repro.circuits import (
    Circuit,
    Gate,
    GateType,
    from_artifact_format,
    to_artifact_format,
    transpile_to_clifford_rz,
)
from repro.workloads import BenchmarkSpec, register_benchmark


def build_high_level_circuit() -> Circuit:
    """A toy molecular-dynamics style circuit with non-basis gates."""
    circuit = Circuit(6, name="custom_chemistry")
    for qubit in range(6):
        circuit.append(Gate(GateType.RY, (qubit,), angle=0.2 + 0.05 * qubit))
    for left in range(5):
        circuit.append(Gate(GateType.RZZ, (left, left + 1), angle=0.37))
    circuit.append(Gate(GateType.CCX, (0, 1, 2)))
    circuit.append(Gate(GateType.SWAP, (3, 5)))
    for qubit in range(6):
        circuit.append(Gate(GateType.RZ, (qubit,), angle=math.pi / 7))
    return circuit


def main() -> None:
    high_level = build_high_level_circuit()
    lowered = transpile_to_clifford_rz(high_level)
    print(f"high-level gates: {len(high_level)}  ->  "
          f"Clifford+Rz gates: {len(lowered)}")
    print(f"stats after lowering: {lowered.stats().as_row()}")

    # Round-trip through the artifact appendix B.7 text format.
    text = to_artifact_format(lowered)
    print("\nfirst lines of the artifact-format export:")
    print("\n".join(text.splitlines()[:6]))
    reloaded = from_artifact_format(text, num_qubits=lowered.num_qubits,
                                    name=lowered.name)

    # Register the imported circuit; from here on it is addressable by name
    # in any ExperimentSpec (and from `rescq exp` spec files).
    stats = reloaded.stats()
    register_benchmark(BenchmarkSpec(
        name="custom_chemistry", suite="custom",
        num_qubits=reloaded.num_qubits,
        paper_rz=stats.num_rz, paper_cnot=stats.num_cnot,
        builder=lambda: reloaded))

    spec = ExperimentSpec(name="custom_chemistry",
                          benchmarks=("custom_chemistry",),
                          schedulers=("rescq",), seeds=1)
    result = run_experiment(spec).results[0]
    print(f"\nRESCQ executed {result.num_gates} gates in "
          f"{result.total_cycles} cycles "
          f"(idle fraction {result.idle_fraction():.2f})")

    slowest = sorted(result.traces, key=lambda t: t.latency_after_schedule,
                     reverse=True)[:5]
    rows = [{
        "gate": trace.kind,
        "qubits": ",".join(str(q) for q in trace.qubits),
        "released_at": trace.scheduled_cycle,
        "finished_at": trace.end_cycle,
        "latency": trace.latency_after_schedule,
        "injections": trace.injections,
        "prep_attempts": trace.preparation_attempts,
    } for trace in slowest]
    print()
    print(format_table(rows, title="Five slowest gates (post-release latency)"))


if __name__ == "__main__":
    main()
