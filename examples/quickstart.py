#!/usr/bin/env python3
"""Quickstart: schedule one circuit with RESCQ and the static baselines.

This is the five-minute tour of the library:

1. build a Clifford+Rz workload (here a 12-qubit QFT);
2. lay it out on a STAR surface-code grid (one 2x2 block per qubit);
3. run the greedy / AutoBraid static baselines and the RESCQ realtime
   scheduler on identical seeds;
4. print total cycle counts, idle fractions and per-gate latency summaries.

Run with::

    python examples/quickstart.py
"""

from repro import SimulationConfig, compare_schedulers, default_layout
from repro.analysis import format_table
from repro.scheduling import AutoBraidScheduler, GreedyScheduler, RescqScheduler
from repro.workloads import qft_circuit


def main() -> None:
    circuit = qft_circuit(12)
    stats = circuit.stats()
    print(f"workload: {circuit.name}  qubits={stats.num_qubits}  "
          f"Rz={stats.num_rz}  CNOT={stats.num_cnot}  depth={stats.depth}")

    layout = default_layout(circuit)
    print(f"layout:   {layout.rows}x{layout.cols} tiles, "
          f"{layout.num_ancilla} ancilla ({layout.ancilla_per_data:.1f} per data qubit)")

    config = SimulationConfig(distance=7, physical_error_rate=1e-4,
                              mst_period=25)
    schedulers = [GreedyScheduler(), AutoBraidScheduler(), RescqScheduler()]
    rows = compare_schedulers(schedulers, circuit, config=config,
                              layout=layout, seeds=3)

    table = []
    baseline = rows["autobraid"].mean_cycles
    for name, cell in rows.items():
        example_result = cell.results[0]
        table.append({
            "scheduler": name,
            "mean_cycles": round(cell.mean_cycles, 1),
            "vs_autobraid": round(cell.mean_cycles / baseline, 2),
            "idle_fraction": round(cell.mean_idle_fraction, 3),
            "mean_rz_latency": round(example_result.mean_latency("rz"), 2),
            "mean_cnot_latency": round(example_result.mean_latency("cnot"), 2),
        })
    print()
    print(format_table(table, title=f"{circuit.name} @ {config.describe()}"))

    speedup = baseline / rows["rescq"].mean_cycles
    print(f"RESCQ speedup over AutoBraid on this workload: {speedup:.2f}x")


if __name__ == "__main__":
    main()
