#!/usr/bin/env python3
"""Quickstart: declare an experiment, run it, slice the results.

This is the five-minute tour of the library:

1. describe an experiment declaratively — benchmark x schedulers x seeds —
   as an :class:`repro.api.ExperimentSpec` (a JSON-serializable artifact);
2. execute it through :func:`repro.api.run_experiment`, which plans
   simulation jobs and runs them through the execution engine;
3. slice the returned :class:`repro.api.ResultSet` per scheduler and print
   total cycle counts, idle fractions and per-gate latency summaries.

The same spec can be saved with ``spec.save("my_experiment.json")`` and
re-run from the command line with ``rescq exp my_experiment.json``.

Run with::

    python examples/quickstart.py
"""

from repro.api import BENCHMARKS, ExperimentSpec, run_experiment
from repro.analysis import format_table
from repro.sim import default_layout


def main() -> None:
    spec = ExperimentSpec(
        name="quickstart",
        benchmarks=("qft_n18",),
        schedulers=("greedy", "autobraid", "rescq"),
        seeds=3,
    )
    print(spec.describe())

    circuit = BENCHMARKS.get("qft_n18").build()
    stats = circuit.stats()
    print(f"workload: {circuit.name}  qubits={stats.num_qubits}  "
          f"Rz={stats.num_rz}  CNOT={stats.num_cnot}  depth={stats.depth}")

    layout = default_layout(circuit)
    print(f"layout:   {layout.rows}x{layout.cols} tiles, "
          f"{layout.num_ancilla} ancilla ({layout.ancilla_per_data:.1f} per data qubit)")

    results = run_experiment(spec)
    cells = results.comparison_rows()

    table = []
    baseline = cells["autobraid"].mean_cycles
    for name, cell in cells.items():
        example_result = cell.results[0]
        table.append({
            "scheduler": name,
            "mean_cycles": round(cell.mean_cycles, 1),
            "vs_autobraid": round(cell.mean_cycles / baseline, 2),
            "idle_fraction": round(cell.mean_idle_fraction, 3),
            "mean_rz_latency": round(example_result.mean_latency("rz"), 2),
            "mean_cnot_latency": round(example_result.mean_latency("cnot"), 2),
        })
    print()
    print(format_table(table, title=f"{circuit.name} @ "
                                    f"{spec.base_config().describe()}"))

    speedup = baseline / cells["rescq"].mean_cycles
    print(f"RESCQ speedup over AutoBraid on this workload: {speedup:.2f}x")
    print()
    print("the same experiment as a shareable JSON spec:")
    print(spec.to_json())


if __name__ == "__main__":
    main()
