#!/usr/bin/env python3
"""Sensitivity study: reproduce the Section 5.2 sweeps on a laptop budget.

Runs the three representative workload families (rotation-dominated dnn,
mixed gcm, routing-dominated qft) through the distance, error-rate and
MST-period sweeps of Figures 11-13 and prints the resulting series.

Each sweep is one registered :class:`repro.api.SweepAxis` driven through
:func:`repro.analysis.run_axis_sweep`; at paper sizes the same axes can be
swept on registered benchmarks from a spec file, e.g.::

    rescq exp <(echo '{"benchmarks": ["dnn_n16"], "grid": {"distance": [5, 7, 9]}}')

Run with::

    python examples/sensitivity_study.py            # scaled-down, ~1 minute
    python examples/sensitivity_study.py --full     # closer to paper sizes
"""

import argparse

from repro.analysis import format_table, run_axis_sweep
from repro.scheduling import DEFAULT_SCHEDULER_NAMES, SCHEDULER_REGISTRY
from repro.workloads import dnn_circuit, gcm_circuit, get_benchmark, qft_circuit


def build_circuits(full: bool):
    if full:
        return [get_benchmark(name).build()
                for name in ("dnn_n16", "gcm_n13", "qft_n18")]
    return [dnn_circuit(10, layers=3),
            gcm_circuit(10, generator_terms=24),
            qft_circuit(10)]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the Table 3 sized circuits")
    parser.add_argument("--seeds", type=int, default=2)
    args = parser.parse_args()

    circuits = build_circuits(args.full)
    schedulers = [SCHEDULER_REGISTRY.create(name)
                  for name in DEFAULT_SCHEDULER_NAMES]

    print("=== Figure 11: sensitivity to code distance (p = 1e-4) ===")
    rows = run_axis_sweep("distance", schedulers, circuits,
                          values=(5, 7, 9, 11, 13), seeds=args.seeds)
    print(format_table([row.as_dict() for row in rows]))

    print("=== Figure 12: sensitivity to physical error rate (d = 7) ===")
    rows = run_axis_sweep("error-rate", schedulers, circuits,
                          values=(1e-3, 1e-4, 1e-5), seeds=args.seeds)
    print(format_table([row.as_dict() for row in rows]))

    print("=== Figure 13: RESCQ sensitivity to MST recomputation period ===")
    rows = run_axis_sweep("mst-period", [SCHEDULER_REGISTRY.create("rescq")],
                          circuits, values=(25, 50, 100, 200),
                          seeds=args.seeds)
    print(format_table([row.as_dict() for row in rows]))


if __name__ == "__main__":
    main()
