"""Setuptools shim so that legacy editable installs (no wheel package) work offline."""

from setuptools import setup

setup()
