"""Service load benchmark — dedup efficiency and tail latency, measured.

Fires thousands of concurrent submissions at a real 2-shard cluster (two
``ExperimentServer`` shards behind one ``ShardRouter``, the same wire path
as ``rescq serve`` + ``rescq route``) in two phases:

* **identical** — every client submits the *same* spec, so after the first
  execution the cluster should answer everything from single-flight dedup
  and the result cache: dedup efficiency ~1.
* **distinct** — every client submits a unique single-job spec (a seeded
  scenario circuit), so nothing can dedupe and the flood pushes the
  pending-jobs gauge into the admission-control high-water mark: a nonzero
  429 rate is the *expected* outcome, and clients retry after the server's
  ``Retry-After`` hint until their job lands.

A third phase measures **availability under chaos**: the same wire path
with a seeded :class:`~repro.cluster.chaos.FaultPlan` injected between the
router and *both* shards (connections randomly refused, closed, truncated
mid-stream, or stalled), recording the fraction of client submissions that
still complete with a full, error-free row stream and the latency tail
paid for the recovery work.

Per phase we record request latency percentiles (p50/p90/p99, successful
requests only), the 429 rate, and dedup efficiency
(``1 - executed / jobs``); the result always goes to ``BENCH_service.json``
at the repo root, which the nightly workflow uploads next to the other
``BENCH_*.json`` artifacts.  Workload sizes scale with ``RESCQ_FULL=1``.
"""

from __future__ import annotations

import json
import os
import random
import time
from concurrent.futures import ThreadPoolExecutor

from repro.cluster import ClusterHarness, FaultPlan

from conftest import FULL_SCALE

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_service.json")

#: Submissions per phase ("thousands of concurrent submissions": 2x this).
REQUESTS = 2000 if FULL_SCALE else 1000
#: Concurrent client threads hammering the router.
CLIENTS = 32
#: Per-shard pending-jobs high-water mark — low enough that the distinct
#: flood provokes admission control.
MAX_PENDING = 8
#: Give up on one submission after this many 429 rounds (a safety valve;
#: the retry loop normally converges long before).
MAX_RETRIES = 200
#: Submissions in the chaos phase (each one a distinct single-job spec).
CHAOS_REQUESTS = 400 if FULL_SCALE else 200
#: Per-connection fault probability in the chaos phase's seeded plan.
CHAOS_RATE = 0.15
#: The seed behind both the fault schedule and the router's retry jitter.
CHAOS_SEED = 2026


def identical_payload():
    return {"name": "load-identical",
            "benchmarks": ["scenario:clifford_t:n=4,depth=3"],
            "schedulers": ["rescq"], "seeds": 4,
            "config": {"mst_period": 10, "mst_latency": 10}}


def distinct_payload(index):
    # Scenario seeds start at 10000 so no distinct job ever shares a
    # fingerprint with the identical phase's default-seed scenario.
    return {"name": f"load-distinct-{index}",
            "benchmarks": [
                f"scenario:clifford_t:n=4,depth=3,seed={10000 + index}"],
            "schedulers": ["rescq"], "seeds": 1,
            "config": {"mst_period": 10, "mst_latency": 10}}


def percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _submit_until_accepted(cluster, payload):
    """One client submission: retry on 429 following Retry-After.

    Returns ``(latency_of_successful_request, rejections_seen, summary)``.
    """
    rejections = 0
    for _attempt in range(MAX_RETRIES):
        start = time.perf_counter()
        status, headers, body = cluster.request("POST", "/experiments",
                                                payload)
        latency = time.perf_counter() - start
        if status == 200:
            summary = json.loads(body.decode().splitlines()[-1])
            return latency, rejections, summary
        if status != 429:
            raise AssertionError(
                f"unexpected HTTP {status}: {body[:200]!r}")
        rejections += 1
        # Back off, but cap the hint so a laptop-scale run stays snappy.
        time.sleep(min(float(headers.get("retry-after", "1")), 0.05))
    raise AssertionError(f"submission never accepted after "
                         f"{MAX_RETRIES} retries")


def _run_phase(cluster, payloads):
    latencies = []
    rejections = 0
    totals = {"jobs": 0, "executed": 0, "cache_hits": 0, "deduped": 0}
    with ThreadPoolExecutor(max_workers=CLIENTS) as clients:
        outcomes = list(clients.map(
            lambda payload: _submit_until_accepted(cluster, payload),
            payloads))
    for latency, rejected, summary in outcomes:
        latencies.append(latency)
        rejections += rejected
        for key in totals:
            totals[key] += summary.get(key, 0)
    attempts = len(payloads) + rejections
    return {
        "requests": len(payloads),
        "attempts": attempts,
        "rejected_429": rejections,
        "rate_429": round(rejections / attempts, 4),
        "jobs": totals["jobs"],
        "executed": totals["executed"],
        "cache_hits": totals["cache_hits"],
        "deduped": totals["deduped"],
        "dedup_efficiency": round(
            1.0 - totals["executed"] / max(1, totals["jobs"]), 4),
        "latency_s": {
            "p50": round(percentile(latencies, 0.50), 4),
            "p90": round(percentile(latencies, 0.90), 4),
            "p99": round(percentile(latencies, 0.99), 4),
        },
    }


def test_bench_service_load():
    with ClusterHarness(shards=2, max_workers=2,
                        max_pending=MAX_PENDING,
                        retry_after=0.05) as cluster:
        identical = _run_phase(
            cluster, [identical_payload() for _ in range(REQUESTS)])
        distinct = _run_phase(
            cluster, [distinct_payload(index) for index in range(REQUESTS)])
        status, _headers, data = cluster.request("GET", "/stats")
        assert status == 200
        stats = json.loads(data)

    # The identical flood must collapse onto (nearly) one execution per
    # unique job: 4 unique jobs over REQUESTS * 4 submitted jobs.
    assert identical["executed"] <= 8, identical
    assert identical["dedup_efficiency"] > 0.99, identical
    # The distinct flood cannot dedupe at all.
    assert distinct["executed"] == distinct["jobs"] == REQUESTS, distinct
    assert distinct["dedup_efficiency"] == 0.0, distinct

    payload = {
        "benchmark": "service",
        "full_scale": FULL_SCALE,
        "config": {"shards": 2, "workers_per_shard": 2,
                   "clients": CLIENTS, "requests_per_phase": REQUESTS,
                   "max_pending": MAX_PENDING},
        "identical": identical,
        "distinct": distinct,
        "cluster": stats["cluster"],
        "router": stats["router"],
    }
    with open(OUTPUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print()
    for phase_name, phase in (("identical", identical),
                              ("distinct", distinct)):
        print(f"[bench-service] {phase_name}: "
              f"{phase['requests']} requests, "
              f"dedup_efficiency={phase['dedup_efficiency']}, "
              f"p50={phase['latency_s']['p50']}s "
              f"p99={phase['latency_s']['p99']}s, "
              f"429s={phase['rejected_429']} "
              f"(rate {phase['rate_429']})")
    print(f"[bench-service] wrote {OUTPUT_PATH}")


def chaos_payload(index):
    # Seeds start at 50000: no overlap with either load-phase fingerprint
    # space, so every chaos submission is real work, not a cache hit.
    return {"name": f"load-chaos-{index}",
            "benchmarks": [
                f"scenario:clifford_t:n=4,depth=3,seed={50000 + index}"],
            "schedulers": ["rescq"], "seeds": 1,
            "config": {"mst_period": 10, "mst_latency": 10}}


def test_bench_service_chaos():
    """Availability and latency tail with faults injected on both shards."""
    plans = {
        index: FaultPlan.seeded(CHAOS_SEED + index, length=CHAOS_REQUESTS,
                                kinds=("close", "truncate", "stall"),
                                rate=CHAOS_RATE, max_rows=1, max_delay=0.01)
        for index in range(2)
    }
    harness = ClusterHarness(
        shards=2, max_workers=2,
        # Shards must stay routable through the whole flood (there is no
        # probe loop running to rejoin a DEAD shard mid-bench), and the
        # retry jitter is seeded so reruns see the same schedule.
        router_options={"rng": random.Random(CHAOS_SEED),
                        "backoff_base": 0.005, "backoff_cap": 0.1,
                        "max_attempts": 6, "dead_after": 10_000},
    ).with_faults(plans)

    outcomes = []

    def submit(index):
        start = time.perf_counter()
        status, _headers, body = harness.request(
            "POST", "/experiments", chaos_payload(index), timeout=600.0)
        latency = time.perf_counter() - start
        if status != 200:
            return latency, False
        lines = body.decode().splitlines()
        rows, summary = lines[:-1], json.loads(lines[-1])
        complete = (len(rows) == 1 and summary.get("jobs") == 1
                    and not summary.get("errors"))
        return latency, complete

    with harness as cluster:
        with ThreadPoolExecutor(max_workers=16) as clients:
            outcomes = list(clients.map(submit, range(CHAOS_REQUESTS)))
        status, _headers, data = cluster.request("GET", "/stats")
        assert status == 200
        stats = json.loads(data)
        faults_fired = sum(
            sum(1 for fault in proxy.applied if fault is not None)
            for proxy in cluster.proxies.values())

    latencies = [latency for latency, _ok in outcomes]
    successes = sum(1 for _latency, ok in outcomes if ok)
    availability = successes / CHAOS_REQUESTS
    record = {
        "requests": CHAOS_REQUESTS,
        "clients": 16,
        "fault_rate": CHAOS_RATE,
        "fault_seed": CHAOS_SEED,
        "faults_fired": faults_fired,
        "availability": round(availability, 4),
        "latency_s": {
            "p50": round(percentile(latencies, 0.50), 4),
            "p90": round(percentile(latencies, 0.90), 4),
            "p99": round(percentile(latencies, 0.99), 4),
        },
        "router": {key: stats["router"][key]
                   for key in ("retried", "recovered", "gave_up",
                               "backoff_waits")},
    }

    # The router's bounded retries must absorb this fault rate entirely.
    assert faults_fired > 0, "the chaos schedule never fired"
    assert availability >= 0.95, record

    # Merge into the load bench's output so one artifact carries all
    # three phases (this test runs after it in file order).
    payload = {"benchmark": "service"}
    if os.path.exists(OUTPUT_PATH):
        with open(OUTPUT_PATH, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload["chaos"] = record
    with open(OUTPUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print()
    print(f"[bench-service] chaos: {CHAOS_REQUESTS} requests, "
          f"{faults_fired} faults fired, "
          f"availability={record['availability']}, "
          f"p99={record['latency_s']['p99']}s, "
          f"recovered={record['router']['recovered']} "
          f"gave_up={record['router']['gave_up']}")
    print(f"[bench-service] wrote {OUTPUT_PATH}")
