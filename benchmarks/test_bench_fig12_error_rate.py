"""Figure 12 — sensitivity of every scheduler to the physical error rate (d=7)."""

from repro.analysis import format_table, run_axis_sweep

from conftest import SEEDS, sensitivity_suite

ERROR_RATES = (1e-3, 3e-4, 1e-4, 3e-5, 1e-5)


def test_bench_fig12_error_rate_sensitivity(benchmark, schedulers, engine):
    circuits = sensitivity_suite()

    def run():
        return run_axis_sweep("error-rate", schedulers, circuits,
                              values=ERROR_RATES, seeds=SEEDS, engine=engine)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Figure 12: sensitivity to physical error rate"))

    by_key = {(r.benchmark, r.scheduler, r.value): r.mean_cycles for r in rows}
    names = sorted({r.benchmark for r in rows})
    for name in names:
        # All schemes are relatively insensitive to p (Section 5.2.2): the
        # swing between the worst and best error rate stays small.
        for scheduler in ("greedy", "autobraid", "rescq"):
            values = [by_key[(name, scheduler, p)] for p in ERROR_RATES]
            assert max(values) <= min(values) * 1.35
        # RESCQ keeps its advantage at every error rate.
        for p in ERROR_RATES:
            assert by_key[(name, "rescq", p)] < by_key[(name, "autobraid", p)]
