"""Section 5.4.1 — classical overhead of maintaining the activity MST.

The paper measures ~92 us to update the MST on a 100x100 grid and ~330 us on a
1000x1000 grid (k=200 edge updates) on an M2 laptop.  We benchmark our Python
implementation of the same incremental-update path and verify the structural
claim: per-update work scales far better than recomputing the tree from
scratch, and the incremental tree stays exactly equivalent to a full Kruskal.
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.fabric import StarVariant, star_layout
from repro.scheduling import AncillaMst, IncrementalMst


GRID_QUBITS = 100          # 100 STAR blocks -> a 20x20 tile grid
EDGE_UPDATES = 200         # the paper's k=200 updates per recomputation window


def _random_updates(incremental, count, seed=0):
    rng = np.random.default_rng(seed)
    edges = list(incremental.graph.edges())
    for _ in range(count):
        u, v = edges[int(rng.integers(len(edges)))]
        incremental.update_edge(u, v, float(rng.random()))


def test_bench_mst_incremental_updates(benchmark):
    layout = star_layout(GRID_QUBITS, StarVariant.STAR)
    activity = {pos: 0.1 for pos in layout.ancilla_positions()}
    incremental = IncrementalMst(layout, activity)

    def run():
        _random_updates(incremental, EDGE_UPDATES)
        return incremental

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.matches_full_recompute()


def test_bench_mst_full_recompute_comparison(benchmark):
    """Report incremental-update vs full-recompute wall clock (Section 5.4.1)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for qubits in (25, 100, 225):
        layout = star_layout(qubits, StarVariant.STAR)
        activity = {pos: 0.1 for pos in layout.ancilla_positions()}

        incremental = IncrementalMst(layout, activity)
        start = time.perf_counter()
        _random_updates(incremental, EDGE_UPDATES)
        incremental_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(3):
            AncillaMst(layout, activity)
        full_seconds = (time.perf_counter() - start) / 3

        rows.append({
            "data_qubits": qubits,
            "ancilla_tiles": layout.num_ancilla,
            "incremental_us_per_update": round(
                1e6 * incremental_seconds / EDGE_UPDATES, 1),
            "full_recompute_us": round(1e6 * full_seconds, 1),
        })
    print()
    print(format_table(rows, title="Section 5.4.1: MST maintenance cost"))
    # The per-update incremental cost must be far below one full recompute on
    # the largest grid (the asymptotic argument of Section 5.4.1).
    largest = rows[-1]
    assert (largest["incremental_us_per_update"]
            < largest["full_recompute_us"])
