"""Table 3 — benchmark suite characteristics (paper vs generated circuits)."""

from repro.analysis import format_table
from repro.workloads import table3_rows

from conftest import record_bench


def test_bench_table3_workload_characteristics(benchmark):
    rows = benchmark.pedantic(table3_rows, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Table 3: benchmarks (paper vs generated)"))
    record_bench("table3", rows)
    # Every row regenerates with the right qubit count and a non-trivial
    # amount of both gate types.
    assert len(rows) == 23
    for row in rows:
        assert row["generated_rz"] > 0
        assert row["generated_cnot"] > 0
    # The suite spans the paper's range of Rz:CNOT ratios (~0.3 to ~6.5).
    ratios = [row["generated_rz_per_cnot"] for row in rows]
    assert min(ratios) < 1.0
    assert max(ratios) > 4.0
