"""Ablation study — the contribution of each RESCQ design choice.

DESIGN.md calls out three mechanisms: parallel preparation, eager correction
preparation, and activity-weighted MST routing.  This harness disables each
in turn and reports the slowdown relative to full RESCQ, alongside the static
baseline for context.
"""

from repro import SimulationConfig, default_layout
from repro.analysis import format_table
from repro.exec import plan_jobs
from repro.scheduling import AutoBraidScheduler, RescqScheduler
from repro.sim import geometric_mean

from conftest import SEEDS, execution_engine, sensitivity_suite


def run_scheduler(scheduler, circuit, config, engine):
    """Run one (scheduler, circuit) cell for SEEDS seeds through the engine."""
    jobs = plan_jobs([scheduler], circuit, config, default_layout(circuit),
                     SEEDS)
    return engine.run(jobs)


VARIANTS = {
    "rescq (full)": {},
    "no parallel preparation": {"parallel_preparation": False},
    "no eager correction prep": {"eager_correction_prep": False},
    "no MST routing (BFS paths)": {"use_mst_routing": False},
    "no parallel + no eager": {"parallel_preparation": False,
                               "eager_correction_prep": False},
}


def run_ablations():
    engine = execution_engine()
    circuits = sensitivity_suite()
    base_config = SimulationConfig()
    rows = []
    reference = {}
    for label, overrides in VARIANTS.items():
        config = base_config.with_updates(**overrides)
        per_benchmark = []
        for circuit in circuits:
            results = run_scheduler(RescqScheduler(name="rescq"), circuit,
                                    config, engine)
            per_benchmark.append(
                sum(r.total_cycles for r in results) / len(results))
        mean_cycles = geometric_mean(per_benchmark)
        if label == "rescq (full)":
            reference["cycles"] = mean_cycles
        rows.append({"variant": label, "geomean_cycles": round(mean_cycles, 1),
                     "slowdown_vs_full": round(
                         mean_cycles / reference.get("cycles", mean_cycles), 3)})
    # Static baseline for context.
    per_benchmark = []
    for circuit in circuits:
        results = run_scheduler(AutoBraidScheduler(), circuit, base_config,
                                engine)
        per_benchmark.append(sum(r.total_cycles for r in results) / len(results))
    baseline_cycles = geometric_mean(per_benchmark)
    rows.append({"variant": "autobraid (static baseline)",
                 "geomean_cycles": round(baseline_cycles, 1),
                 "slowdown_vs_full": round(baseline_cycles / reference["cycles"],
                                           3)})
    return rows


def test_bench_ablations(benchmark):
    rows = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: contribution of RESCQ mechanisms"))

    by_variant = {row["variant"]: row["slowdown_vs_full"] for row in rows}
    # Every ablation costs cycles (or is at worst neutral within noise).
    for label in VARIANTS:
        assert by_variant[label] >= 0.95
    # Disabling both preparation optimisations hurts at least as much as
    # disabling either one alone.
    assert (by_variant["no parallel + no eager"]
            >= max(by_variant["no parallel preparation"],
                   by_variant["no eager correction prep"]) - 0.05)
    # Even the most ablated RESCQ variant stays well ahead of the baseline.
    assert by_variant["autobraid (static baseline)"] > by_variant[
        "no parallel + no eager"]
