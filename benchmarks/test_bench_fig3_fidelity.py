"""Figure 3 — maximum rotation count vs target fidelity (Clifford+Rz vs +T)."""

from repro.analysis import figure3_series, format_table


def test_bench_fig3_fidelity_capacity(benchmark):
    rows = benchmark(figure3_series)
    print()
    print(format_table(rows, title="Figure 3: max rotations per target fidelity"))
    # Clifford+Rz supports orders of magnitude more rotations at every point.
    for row in rows:
        assert (row["max_rotations_clifford_rz"]
                >= 10 * row["max_rotations_clifford_t"])
    # Larger distance -> larger capacity for both compilations.
    by_fidelity = {}
    for row in rows:
        by_fidelity.setdefault(row["target_fidelity"], []).append(
            (row["distance"], row["max_rotations_clifford_rz"]))
    for series in by_fidelity.values():
        series.sort()
        values = [value for _, value in series]
        assert values == sorted(values)
