"""Table 1 — properties of the ZZ vs CNOT injection strategies."""

from repro.analysis import format_table
from repro.rus import InjectionModel, InjectionStrategy


def table1_rows():
    rows = []
    for strategy in (InjectionStrategy.CNOT, InjectionStrategy.ZZ):
        rows.append({
            "parameter": strategy.name,
            "exposed_edge": strategy.exposed_edge,
            "ancillas_required": strategy.ancillas_required,
            "injection_cycles": strategy.cycles,
            "expected_injections_per_rz": InjectionModel(
                strategy).expected_injection_count(),
        })
    return rows


def test_bench_table1_monte_carlo_agreement():
    """Equation 1 cross-check: vectorised RUS-chain sampling vs the analytic
    expectation, for a generic angle and for the Clifford-truncated T gate."""
    import math

    import numpy as np

    rng = np.random.default_rng(0)
    model = InjectionModel()
    generic = model.sample_injection_counts(rng, 200_000)
    assert abs(generic.mean() - model.expected_injection_count()) < 0.02
    t_gate = model.sample_injection_counts(rng, 200_000, theta=math.pi / 4)
    expected_t = model.expected_injection_count(theta=math.pi / 4)
    assert abs(t_gate.mean() - expected_t) < 0.02
    print(f"\nMonte-Carlo E[injections]: generic {generic.mean():.4f} "
          f"(analytic {model.expected_injection_count():.4f}), "
          f"T gate {t_gate.mean():.4f} (analytic {expected_t:.4f})")


def test_bench_table1_injection_strategies(benchmark):
    rows = benchmark(table1_rows)
    print()
    print(format_table(rows, title="Table 1: injection strategies"))
    by_name = {row["parameter"]: row for row in rows}
    assert by_name["CNOT"]["exposed_edge"] == "X"
    assert by_name["ZZ"]["exposed_edge"] == "Z"
    assert by_name["CNOT"]["ancillas_required"] == 2
    assert by_name["ZZ"]["ancillas_required"] == 1
    assert by_name["CNOT"]["injection_cycles"] == 2
    assert by_name["ZZ"]["injection_cycles"] == 1
