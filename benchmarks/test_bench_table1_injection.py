"""Table 1 — properties of the ZZ vs CNOT injection strategies."""

from repro.analysis import format_table
from repro.rus import InjectionModel, InjectionStrategy


def table1_rows():
    rows = []
    for strategy in (InjectionStrategy.CNOT, InjectionStrategy.ZZ):
        rows.append({
            "parameter": strategy.name,
            "exposed_edge": strategy.exposed_edge,
            "ancillas_required": strategy.ancillas_required,
            "injection_cycles": strategy.cycles,
            "expected_injections_per_rz": InjectionModel(
                strategy).expected_injection_count(),
        })
    return rows


def test_bench_table1_injection_strategies(benchmark):
    rows = benchmark(table1_rows)
    print()
    print(format_table(rows, title="Table 1: injection strategies"))
    by_name = {row["parameter"]: row for row in rows}
    assert by_name["CNOT"]["exposed_edge"] == "X"
    assert by_name["ZZ"]["exposed_edge"] == "Z"
    assert by_name["CNOT"]["ancillas_required"] == 2
    assert by_name["ZZ"]["ancillas_required"] == 1
    assert by_name["CNOT"]["injection_cycles"] == 2
    assert by_name["ZZ"]["injection_cycles"] == 1
