"""Figure 16 — expected cycles and attempts to prepare |m_theta> vs d and p."""

import numpy as np

from repro.analysis import format_table
from repro.rus import PreparationModel

DISTANCES = (5, 7, 9, 11, 13)
ERROR_RATES = (1e-3, 1e-4, 1e-5)


def figure16_rows():
    rows = []
    for p in ERROR_RATES:
        for d in DISTANCES:
            model = PreparationModel(distance=d, physical_error_rate=p)
            rng = np.random.default_rng(0)
            sampled_cycles = float(np.mean([model.sample_cycles(rng)
                                            for _ in range(2000)]))
            rows.append({
                "p": p,
                "d": d,
                "expected_attempts": round(model.expected_attempts(), 3),
                "expected_cycles": round(model.expected_cycles(), 3),
                "sampled_mean_cycles": round(sampled_cycles, 3),
            })
    return rows


def test_bench_fig16_preparation_statistics(benchmark):
    rows = benchmark.pedantic(figure16_rows, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 16: |m_theta> preparation statistics"))

    by_key = {(row["p"], row["d"]): row for row in rows}
    for p in ERROR_RATES:
        cycles = [by_key[(p, d)]["expected_cycles"] for d in DISTANCES]
        attempts = [by_key[(p, d)]["expected_attempts"] for d in DISTANCES]
        # Expected cycles decrease with distance; attempts increase with it.
        assert cycles == sorted(cycles, reverse=True)
        assert attempts == sorted(attempts)
    for d in DISTANCES:
        # Lower physical error rate -> fewer (or equal) cycles.
        series = [by_key[(p, d)]["expected_cycles"] for p in ERROR_RATES]
        assert series == sorted(series, reverse=True)
    # Sampled means agree with the analytic expectation (ceil rounding adds
    # at most one cycle of bias).
    for row in rows:
        assert abs(row["sampled_mean_cycles"] - row["expected_cycles"]) < 1.1
