"""Appendix A.2 — cost of one Rz via |m_theta> injection vs a T-state factory."""

from repro.analysis import format_table
from repro.rus import (
    InjectionModel,
    InjectionStrategy,
    PreparationModel,
    RzCostModel,
    compare_rz_vs_t,
)


def appendix_rows():
    result = compare_rz_vs_t()
    continuous = RzCostModel(PreparationModel(5, 1e-3),
                             InjectionModel(InjectionStrategy.CNOT))
    return [{
        "quantity": "continuous-angle Rz (cycles)",
        "value": round(result.continuous_angle_cycles, 2),
    }, {
        "quantity": "continuous-angle Rz, 4 parallel preps (cycles)",
        "value": round(continuous.expected_cycles(parallel_patches=4), 2),
    }, {
        "quantity": "Clifford+T Rz, best case (cycles)",
        "value": result.clifford_t_cycles_best,
    }, {
        "quantity": "Clifford+T Rz, worst case (cycles)",
        "value": result.clifford_t_cycles_worst,
    }, {
        "quantity": "Clifford+T overhead factor (best)",
        "value": round(result.overhead_best, 1),
    }, {
        "quantity": "Clifford+T overhead factor (worst)",
        "value": round(result.overhead_worst, 1),
    }]


def test_bench_appendix_a2_rz_vs_t(benchmark):
    rows = benchmark(appendix_rows)
    print()
    print(format_table(rows, title="Appendix A.2: |m_theta> vs T injection"))
    by_name = {row["quantity"]: row["value"] for row in rows}
    # Paper: ~8.4 cycles per Rz with the baseline policy, 200-1300 for
    # Clifford+T, i.e. a 20-150x overhead.
    assert 5.0 <= by_name["continuous-angle Rz (cycles)"] <= 12.0
    assert by_name["Clifford+T Rz, best case (cycles)"] == 200
    assert by_name["Clifford+T Rz, worst case (cycles)"] == 1300
    assert by_name["Clifford+T overhead factor (best)"] >= 15
    assert by_name["Clifford+T overhead factor (worst)"] >= 100
