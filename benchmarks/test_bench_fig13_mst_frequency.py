"""Figure 13 — RESCQ's sensitivity to the MST recomputation period k."""

from repro.analysis import format_table, run_axis_sweep
from repro.scheduling import RescqScheduler

from conftest import SEEDS, sensitivity_suite

PERIODS = (25, 50, 100, 200)


def test_bench_fig13_mst_period_sensitivity(benchmark, engine):
    circuits = sensitivity_suite()

    def run():
        return run_axis_sweep("mst-period", [RescqScheduler()], circuits,
                              values=PERIODS, seeds=SEEDS, engine=engine)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Figure 13: RESCQ sensitivity to MST period k"))

    by_key = {(r.benchmark, r.value): r.mean_cycles for r in rows}
    for name in sorted({r.benchmark for r in rows}):
        values = [by_key[(name, k)] for k in PERIODS]
        # Performance deteriorates only negligibly as k increases
        # (Section 5.2.3): the whole sweep stays within ~20%.
        assert max(values) <= min(values) * 1.2
