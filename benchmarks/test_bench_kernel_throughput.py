"""Kernel throughput benchmark — the repo's scheduler-performance trajectory.

Runs the (scaled) Figure 10 workload under all three schedulers and records
**simulated cycles per wall-clock second** to ``BENCH_kernel.json`` at the
repo root.  Because absolute wall time is machine-dependent, every number is
also *normalised* by a small pure-Python calibration loop timed on the same
machine: ``normalised_throughput = cycles/sec x calibration_loop_seconds``
is "simulated cycles per calibration unit", which transfers between hosts of
different speeds.

Regression guard: ``benchmarks/BENCH_kernel_baseline.json`` commits the
normalised throughput of the current kernel.  With ``RESCQ_BENCH_STRICT=1``
(set by CI) the benchmark **fails when any scheduler's normalised throughput
drops more than 20%** below that baseline, and when the estimated speedup
over the recorded pre-kernel-extraction simulator falls below 1.5x.
Refresh the baseline intentionally with::

    RESCQ_BENCH_REBASE=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_bench_kernel_throughput.py -s
"""

from __future__ import annotations

import json
import os
import time

from repro import SimulationConfig
from repro.kernel import KERNEL_BACKEND_NAMES, kernel_numba_available
from repro.scheduling import DEFAULT_SCHEDULER_NAMES, SCHEDULER_REGISTRY
from repro.sim.runner import default_layout

from conftest import SEEDS, evaluation_suite

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_kernel.json")
BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "BENCH_kernel_baseline.json")

STRICT = bool(int(os.environ.get("RESCQ_BENCH_STRICT", "0")))
REBASE = bool(int(os.environ.get("RESCQ_BENCH_REBASE", "0")))

#: Maximum tolerated normalised-throughput drop vs the committed baseline.
REGRESSION_TOLERANCE = 0.20
#: Required wall-clock improvement over the pre-kernel simulator (ISSUE 3).
REQUIRED_SPEEDUP = 1.5


def _calibration_loop_seconds() -> float:
    """Time a fixed pure-Python workload (the machine-speed yardstick)."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        acc = 0
        for i in range(2_000_000):
            acc += i & 1023
        best = min(best, time.perf_counter() - start)
    assert acc >= 0
    return best


def test_bench_kernel_throughput():
    config = SimulationConfig()
    circuits = evaluation_suite()
    # Layouts are built outside the timed region: layout construction is
    # per-circuit setup, not scheduler work, and including it understated
    # scheduler throughput by ~25% on the laptop-scale suite.
    layouts = [default_layout(circuit) for circuit in circuits]
    calibration_s = _calibration_loop_seconds()

    per_scheduler = {}
    total_wall = 0.0
    total_cycles = 0
    for name in DEFAULT_SCHEDULER_NAMES:
        # Best of two passes: one-shot wall times are noisy on shared
        # runners, and the regression gate compares against a fixed baseline.
        wall = float("inf")
        for _round in range(2):
            start = time.perf_counter()
            sim_cycles = 0
            gates = 0
            for circuit, layout in zip(circuits, layouts):
                scheduler = SCHEDULER_REGISTRY.create(name)
                for seed in range(SEEDS):
                    result = scheduler.run(circuit, layout, config, seed=seed)
                    sim_cycles += result.total_cycles
                    gates += result.num_gates
            wall = min(wall, time.perf_counter() - start)
        throughput = sim_cycles / wall
        per_scheduler[name] = {
            "wall_s": round(wall, 4),
            "sim_cycles": sim_cycles,
            "gates": gates,
            "cycles_per_sec": round(throughput, 1),
            "normalised_throughput": round(throughput * calibration_s, 1),
        }
        total_wall += wall
        total_cycles += sim_cycles

    # Per-engine RESCQ throughput: every kernel backend runs the same
    # workload (results are byte-identical — the golden-engine matrix
    # enforces that), so the walls isolate pure event-engine overhead.
    # "cold" is the first pass (includes any lazy compilation, e.g. the
    # numba run-kernel warm-up); "warm" is the best of the remaining passes.
    per_engine = {}
    for engine_name in KERNEL_BACKEND_NAMES:
        if engine_name == "numba" and not kernel_numba_available():
            continue
        engine_config = SimulationConfig(kernel_backend=engine_name)
        walls = []
        for _round in range(3):
            start = time.perf_counter()
            sim_cycles = 0
            for circuit, layout in zip(circuits, layouts):
                scheduler = SCHEDULER_REGISTRY.create("rescq")
                for seed in range(SEEDS):
                    result = scheduler.run(circuit, layout, engine_config,
                                           seed=seed)
                    sim_cycles += result.total_cycles
            walls.append(time.perf_counter() - start)
        cold, warm = walls[0], min(walls[1:])
        throughput = sim_cycles / warm
        per_engine[engine_name] = {
            "cold_wall_s": round(cold, 4),
            "warm_wall_s": round(warm, 4),
            "sim_cycles": sim_cycles,
            "cycles_per_sec": round(throughput, 1),
            "normalised_throughput": round(throughput * calibration_s, 1),
        }

    baseline = None
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)

    report = {
        "suite": "fig10-workload",
        "full_scale": bool(int(os.environ.get("RESCQ_FULL", "0"))),
        "seeds": SEEDS,
        "calibration_loop_s": round(calibration_s, 5),
        "total": {
            "wall_s": round(total_wall, 4),
            "sim_cycles": total_cycles,
            "cycles_per_sec": round(total_cycles / total_wall, 1),
            "normalised_throughput": round(total_cycles / total_wall
                                           * calibration_s, 1),
        },
        "per_scheduler": per_scheduler,
        "per_engine": per_engine,
    }

    if baseline is not None and "pre_kernel" in baseline:
        # Estimate what the pre-kernel simulator would take on THIS machine
        # by rescaling its recorded wall time with the calibration ratio.
        pre = baseline["pre_kernel"]
        scale = calibration_s / pre.get("calibration_loop_s",
                                        baseline["calibration_loop_s"])
        estimated_pre_wall = pre["wall_s"] * scale
        report["speedup_vs_pre_kernel"] = round(
            estimated_pre_wall / total_wall, 2)
        report["pre_kernel_wall_s_estimated"] = round(estimated_pre_wall, 4)

    with open(OUTPUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")

    print()
    print(f"calibration loop: {calibration_s * 1000:.1f} ms")
    for name, row in per_scheduler.items():
        print(f"{name:>10}: {row['cycles_per_sec']:>10.0f} cycles/s  "
              f"(normalised {row['normalised_throughput']:.0f}, "
              f"{row['wall_s']:.2f}s wall)")
    for name, row in per_engine.items():
        print(f"engine {name:>8}: {row['cycles_per_sec']:>10.0f} cycles/s  "
              f"(normalised {row['normalised_throughput']:.0f}, "
              f"cold {row['cold_wall_s']:.2f}s / warm "
              f"{row['warm_wall_s']:.2f}s)")
    if "speedup_vs_pre_kernel" in report:
        print(f"speedup vs pre-kernel simulator: "
              f"{report['speedup_vs_pre_kernel']:.2f}x")
    print(f"wrote {OUTPUT_PATH}")

    if REBASE or baseline is None:
        payload = {
            "machine": "refresh via RESCQ_BENCH_REBASE=1",
            "calibration_loop_s": round(calibration_s, 5),
            "seeds": SEEDS,
            "normalised_throughput": {
                name: row["normalised_throughput"]
                for name, row in per_scheduler.items()},
            "engine_normalised_throughput": {
                name: row["normalised_throughput"]
                for name, row in per_engine.items()},
        }
        if baseline is not None and "pre_kernel" in baseline:
            payload["pre_kernel"] = baseline["pre_kernel"]
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"rebased {BASELINE_PATH}")
        return

    # Regression guard (>20% normalised-throughput drop fails under CI).
    # Covers both the per-scheduler walls and the per-engine RESCQ walls,
    # so a slowdown in any event-engine backend fails the gate even while
    # the default engine stays fast.
    failures = []
    for name, row in per_scheduler.items():
        reference = baseline["normalised_throughput"].get(name)
        if reference is None:
            continue
        floor = reference * (1.0 - REGRESSION_TOLERANCE)
        if row["normalised_throughput"] < floor:
            failures.append(
                f"{name}: normalised throughput "
                f"{row['normalised_throughput']:.0f} < {floor:.0f} "
                f"(baseline {reference:.0f} - {REGRESSION_TOLERANCE:.0%})")
    for name, row in per_engine.items():
        reference = baseline.get("engine_normalised_throughput", {}).get(name)
        if reference is None:
            continue
        floor = reference * (1.0 - REGRESSION_TOLERANCE)
        if row["normalised_throughput"] < floor:
            failures.append(
                f"engine {name}: normalised throughput "
                f"{row['normalised_throughput']:.0f} < {floor:.0f} "
                f"(baseline {reference:.0f} - {REGRESSION_TOLERANCE:.0%})")
    if failures:
        message = "kernel throughput regression:\n  " + "\n  ".join(failures)
        if STRICT:
            raise AssertionError(message)
        print(f"[warn] {message}")

    if STRICT and "speedup_vs_pre_kernel" in report:
        assert report["speedup_vs_pre_kernel"] >= REQUIRED_SPEEDUP, (
            f"fig10 wall-clock speedup {report['speedup_vs_pre_kernel']:.2f}x "
            f"fell below the required {REQUIRED_SPEEDUP}x vs the pre-kernel "
            f"simulator")
