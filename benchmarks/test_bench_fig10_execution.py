"""Figure 10 — normalised execution time across the benchmark suite.

The headline result: at d=7, p=1e-4, RESCQ improves over the statically
scheduled baselines by roughly 2x (geometric mean across benchmarks).
"""

from repro.analysis import format_normalised_summary, run_execution_comparison

from conftest import SEEDS, evaluation_suite, record_bench


def test_bench_fig10_normalised_execution_time(benchmark, headline_config,
                                               schedulers, engine):
    circuits = evaluation_suite()

    def run():
        return run_execution_comparison(circuits, schedulers=schedulers,
                                        config=headline_config, seeds=SEEDS,
                                        baseline="autobraid", engine=engine)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_normalised_summary(
        summary, title="Figure 10: execution time normalised to AutoBraid"))

    speedup_vs_autobraid = summary.geomean_speedup("rescq", over="autobraid")
    speedup_vs_greedy = summary.geomean_speedup("rescq", over="greedy")
    print(f"geomean speedup over autobraid: {speedup_vs_autobraid:.2f}x")
    print(f"geomean speedup over greedy:    {speedup_vs_greedy:.2f}x")
    record_bench("fig10", {
        "normalised": summary.normalised(),
        "geomean_speedup_vs_autobraid": speedup_vs_autobraid,
        "geomean_speedup_vs_greedy": speedup_vs_greedy,
    })

    # The paper reports an average 2x improvement; require the reproduction to
    # land in the same regime (clearly above 1.4x on the scaled suite).
    assert speedup_vs_autobraid > 1.4
    assert speedup_vs_greedy > 1.4
    # RESCQ must win on (nearly) every individual benchmark.
    normalised = summary.normalised()
    wins = sum(1 for row in normalised.values() if row["rescq"] < 1.0)
    assert wins >= int(0.8 * len(normalised))
