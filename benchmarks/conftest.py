"""Shared fixtures for the figure/table regeneration harnesses.

Every benchmark file regenerates one table or figure of the paper and prints
its rows/series, so running ``pytest benchmarks/ --benchmark-only -s`` leaves a
text record of the reproduced evaluation.

By default the harnesses run on *scaled-down* workloads (a laptop-friendly
subset of Table 3 at reduced size) so the whole suite finishes in minutes.
Set the environment variable ``RESCQ_FULL=1`` to run the paper-sized
workloads; expect several hours, comparable to the original artifact's 0.5-1
hour on 16 threads plus our pure-Python overhead.

Execution is routed through :mod:`repro.exec`:

* ``RESCQ_JOBS=N`` fans simulation jobs out over N worker processes
  (``RESCQ_JOBS=0`` means one worker per CPU);
* ``RESCQ_CACHE=DIR`` memoises finished jobs on disk, so re-running a
  harness skips every already-measured point.

Results are identical for every setting — executors preserve job order and
each job is independently seeded.
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro import SimulationConfig
from repro.api import build_engine
from repro.circuits import Circuit
from repro.exec import ExecutionEngine
from repro.scheduling import DEFAULT_SCHEDULER_NAMES, SCHEDULER_REGISTRY
from repro.workloads import (
    dnn_circuit,
    gcm_circuit,
    get_benchmark,
    hamiltonian_simulation_circuit,
    ising_circuit,
    qaoa_fermionic_swap_circuit,
    qaoa_vanilla_circuit,
    qft_circuit,
    qugan_circuit,
    vqe_circuit,
    wstate_circuit,
)

FULL_SCALE = bool(int(os.environ.get("RESCQ_FULL", "0")))

#: When set, harnesses that call :func:`record_bench` also write their rows
#: to ``BENCH_<name>.json`` at the repo root, which the nightly benchmark
#: workflow uploads as artifacts (the kernel-throughput harness always
#: writes its own ``BENCH_kernel.json``).
RECORD = bool(int(os.environ.get("RESCQ_BENCH_RECORD", "0")))

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def record_bench(name: str, payload) -> None:
    """Dump one harness's result rows to ``BENCH_<name>.json`` (if enabled)."""
    if not RECORD:
        return
    import json

    path = os.path.join(_REPO_ROOT, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"benchmark": name, "full_scale": FULL_SCALE,
                   "payload": payload}, handle, indent=2, sort_keys=True)
        handle.write("\n")

#: Number of seeded repetitions per configuration (the paper uses 10-1000).
SEEDS = 5 if FULL_SCALE else 2


def execution_engine() -> ExecutionEngine:
    """Build the engine the harnesses run through (see module docstring)."""
    return build_engine(jobs=int(os.environ.get("RESCQ_JOBS", "1")),
                        cache=os.environ.get("RESCQ_CACHE"))


def evaluation_suite() -> List[Circuit]:
    """The benchmark suite used by the Figure 10 style experiments.

    At full scale this is every Table 3 row; at laptop scale it is one
    representative of every workload family, shrunk to <= 16 qubits.
    """
    if FULL_SCALE:
        from repro.workloads import TABLE3
        return [spec.build() for spec in TABLE3]
    return [
        ising_circuit(12),
        qft_circuit(10),
        qugan_circuit(11),
        gcm_circuit(10, generator_terms=30),
        dnn_circuit(10, layers=3),
        wstate_circuit(12),
        hamiltonian_simulation_circuit(12),
        qaoa_vanilla_circuit(10, rounds=1),
        qaoa_fermionic_swap_circuit(10, rounds=1),
        vqe_circuit(10),
    ]


def sensitivity_suite() -> List[Circuit]:
    """The three representative benchmarks of Section 5.2, scaled down."""
    if FULL_SCALE:
        return [get_benchmark(name).build()
                for name in ("dnn_n16", "gcm_n13", "qft_n160")]
    return [
        dnn_circuit(10, layers=3),
        gcm_circuit(10, generator_terms=24),
        qft_circuit(12),
    ]


@pytest.fixture(scope="session")
def headline_config() -> SimulationConfig:
    """d=7, p=1e-4, k=25 — the configuration of Figure 10."""
    return SimulationConfig()


@pytest.fixture(scope="session")
def schedulers():
    return [SCHEDULER_REGISTRY.create(name)
            for name in DEFAULT_SCHEDULER_NAMES]


@pytest.fixture(scope="session")
def engine() -> ExecutionEngine:
    """Session-wide execution engine (RESCQ_JOBS / RESCQ_CACHE aware)."""
    return execution_engine()


@pytest.fixture(scope="session")
def eval_circuits() -> List[Circuit]:
    return evaluation_suite()


@pytest.fixture(scope="session")
def sensitivity_circuits() -> List[Circuit]:
    return sensitivity_suite()
