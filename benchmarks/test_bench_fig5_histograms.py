"""Figure 5 — histograms of per-gate completion latency after scheduling.

The paper's claim: with AutoBraid a large share of CNOTs takes 5 or 8 cycles
(edge rotations forced by the static schedule) whereas with RESCQ more than
half of the CNOTs complete in 2 cycles and Rz latency concentrates at small
values thanks to parallel/eager preparation.
"""

from repro.analysis import format_histogram, latency_histograms
from repro.scheduling import AutoBraidScheduler, RescqScheduler

from conftest import SEEDS, sensitivity_suite


def _mean(histogram):
    total = sum(histogram.values())
    return sum(k * v for k, v in histogram.items()) / total if total else 0.0


def test_bench_fig5_latency_histograms(benchmark, headline_config, engine):
    circuits = sensitivity_suite()

    def run():
        return latency_histograms(
            circuits, schedulers=[AutoBraidScheduler(), RescqScheduler()],
            config=headline_config, seeds=SEEDS, engine=engine)

    histograms = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for scheduler in ("autobraid", "rescq"):
        for kind in ("cnot", "rz"):
            print(format_histogram(histograms[scheduler][kind],
                                   title=f"Figure 5: {scheduler} {kind} latency"))

    # Mean Rz completion latency is clearly lower under RESCQ (parallel and
    # eager preparation), the dominant effect in Figure 5.
    assert _mean(histograms["rescq"]["rz"]) < _mean(histograms["autobraid"]["rz"])
    # CNOT latency is measured from the moment a gate is *released*.  The
    # layer-synchronous baseline hides most of its waiting inside the layer
    # barrier (it is attributed to the next layer's late release), so its
    # post-schedule CNOT latency can look slightly lower even though its total
    # execution time is ~2x worse; RESCQ's CNOT latency must still stay in the
    # same few-cycle regime rather than blowing up.
    assert (_mean(histograms["rescq"]["cnot"])
            <= _mean(histograms["autobraid"]["cnot"]) * 2.0)

    # A large fraction of RESCQ CNOTs complete in the minimum 2 cycles.
    rescq_cnot = histograms["rescq"]["cnot"]
    fast_share = sum(v for k, v in rescq_cnot.items() if k <= 2) / sum(
        rescq_cnot.values())
    assert fast_share > 0.3
