"""Figure 14 — sensitivity to ancilla availability (grid compression).

Reproduced claims: compression costs every scheduler cycles (fewer ancillas),
but RESCQ retains a clear advantage even on the most constrained grids
(contribution 3: ~1.65x average improvement at full compression).  The exact
achieved compression per requested fraction is reported because our
compression pass additionally preserves ancilla-fabric connectivity (see
DESIGN.md).
"""

from repro.analysis import format_table, run_axis_sweep
from repro.fabric import StarVariant, compress_layout, star_layout
from repro.sim import geometric_mean

from conftest import SEEDS, sensitivity_suite

COMPRESSIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_bench_fig14_compression_sensitivity(benchmark, schedulers, engine):
    circuits = sensitivity_suite()

    def run():
        return run_axis_sweep("compression", schedulers, circuits,
                              values=COMPRESSIONS, seeds=SEEDS, engine=engine)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Figure 14: sensitivity to grid compression"))

    # Report requested vs achieved compression for one representative grid.
    example = star_layout(circuits[0].num_qubits, StarVariant.STAR)
    achieved_rows = []
    for fraction in COMPRESSIONS:
        _, report = compress_layout(example, fraction, seed=13)
        achieved_rows.append({
            "requested": fraction,
            "achieved": round(report.achieved_fraction, 2),
            "ancilla_per_data": round(report.ancilla_per_data_after, 2),
        })
    print(format_table(achieved_rows, title="Requested vs achieved compression"))

    by_key = {(r.benchmark, r.scheduler, r.value): r.mean_cycles for r in rows}
    names = sorted({r.benchmark for r in rows})
    # RESCQ keeps a healthy advantage at the most constrained point.
    ratios = [by_key[(name, "autobraid", 1.0)] / by_key[(name, "rescq", 1.0)]
              for name in names]
    print(f"geomean RESCQ advantage at 100% compression: "
          f"{geometric_mean(ratios):.2f}x")
    assert geometric_mean(ratios) > 1.25
    # Compression never *helps* RESCQ (ancilla loss has a cost).
    for name in names:
        assert (by_key[(name, "rescq", 1.0)]
                >= 0.95 * by_key[(name, "rescq", 0.0)])
