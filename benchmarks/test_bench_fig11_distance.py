"""Figure 11 — sensitivity of every scheduler to the code distance (p=1e-4)."""

from repro.analysis import format_table, run_axis_sweep

from conftest import SEEDS, sensitivity_suite

DISTANCES = (5, 7, 9, 11, 13)


def test_bench_fig11_distance_sensitivity(benchmark, schedulers, engine):
    circuits = sensitivity_suite()

    def run():
        return run_axis_sweep("distance", schedulers, circuits,
                              values=DISTANCES, seeds=SEEDS, engine=engine)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Figure 11: sensitivity to code distance"))

    by_key = {(r.benchmark, r.scheduler, r.value): r.mean_cycles for r in rows}
    benchmarks_names = sorted({r.benchmark for r in rows})
    for name in benchmarks_names:
        # Execution time improves (or at least does not get worse) as d grows,
        # for every scheduler (Section 5.2.1).
        for scheduler in ("greedy", "autobraid", "rescq"):
            low_d = by_key[(name, scheduler, DISTANCES[0])]
            high_d = by_key[(name, scheduler, DISTANCES[-1])]
            assert high_d <= low_d * 1.1
        # RESCQ stays ahead of the baselines at every distance.
        for d in DISTANCES:
            assert by_key[(name, "rescq", d)] < by_key[(name, "autobraid", d)]

    # RESCQ is less sensitive to d than the baseline: its relative swing
    # across the sweep is no larger (Section 5.2.1).
    for name in benchmarks_names:
        rescq_swing = (by_key[(name, "rescq", DISTANCES[0])]
                       / by_key[(name, "rescq", DISTANCES[-1])])
        base_swing = (by_key[(name, "autobraid", DISTANCES[0])]
                      / by_key[(name, "autobraid", DISTANCES[-1])])
        assert rescq_swing <= base_swing * 1.3
