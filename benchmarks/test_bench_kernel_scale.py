"""Large-fabric scale benchmark — the routing-core trajectory (ISSUE 8).

Where ``test_bench_kernel_throughput`` tracks the small-fabric Figure 10
workload, this benchmark pins the two scale points the vectorised routing
core exists for:

* ``tiles1k``  — a 250-qubit clifford+Rz scenario on a 1024-tile STAR
  fabric (~3.7k gates), run under BOTH the ``vector`` and the reference
  ``python`` routing backends so the backend comparison is recorded.
* ``gates100k`` — the same fabric with a >100k-gate circuit, run under the
  ``vector`` backend only (a single pass already takes ~1 wall-minute; the
  byte-identical goldens cover python-backend correctness).
* ``tiles4k`` — a 1000-qubit scenario on a 4096-tile fabric, run under
  BOTH the ``batched`` and reference ``python`` event engines (ISSUE 9).
  Thousands of tiles produce large same-cycle event buckets — the regime
  the batched engine's whole-boundary drains target.  Event dispatch is
  a minority of total wall time, so the engines stay close; the point
  exists to pin that neither engine regresses at scale.

Each backend gets a FRESH layout and is timed twice: the ``cold`` run is
where backends differ (``RoutingIndex.for_layout`` memoises paths, plans
and attachment candidates on the layout, so a warm run mostly bypasses the
backend), and the ``warm`` run shows the steady-state seed-sweep cost.
The regression baseline gates the cold numbers.

Results are merged into ``BENCH_kernel.json`` at the repo root under the
``scale_points`` key (creating the file when the throughput benchmark has
not run first).  Normalised throughput uses the same calibration-loop
yardstick as the throughput benchmark so numbers transfer between hosts.

Regression guard: ``benchmarks/BENCH_kernel_scale_baseline.json`` commits
the normalised throughput per (point, backend).  With ``RESCQ_BENCH_STRICT=1``
the benchmark fails when any entry drops more than 20% below baseline.
Refresh intentionally with::

    RESCQ_BENCH_REBASE=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_bench_kernel_scale.py -s
"""

from __future__ import annotations

import json
import os
import time

from repro import SimulationConfig
from repro.scheduling import SCHEDULER_REGISTRY
from repro.sim.runner import default_layout
from repro.workloads.scenarios import clifford_rz_circuit

from test_bench_kernel_throughput import (
    OUTPUT_PATH, REGRESSION_TOLERANCE, _calibration_loop_seconds)

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "BENCH_kernel_scale_baseline.json")

STRICT = bool(int(os.environ.get("RESCQ_BENCH_STRICT", "0")))
REBASE = bool(int(os.environ.get("RESCQ_BENCH_REBASE", "0")))

#: (name, circuit kwargs, dimension, values, time a warm second run?).
#: ``dimension`` names the config knob being compared: ``routing_backend``
#: points exercise the vectorised routing core, ``kernel_backend`` points
#: exercise the event engines.  250 data qubits on the STAR layout is a
#: 32x32 = 1024-tile fabric; 1000 data qubits is 64x64 = 4096 tiles —
#: the regime where same-cycle event buckets grow large enough to
#: exercise the batched engine's whole-boundary drains.
SCALE_POINTS = (
    ("tiles1k", dict(n=250, depth=20, seed=3),
     "routing_backend", ("vector", "python"), True),
    ("gates100k", dict(n=250, depth=560, seed=3),
     "routing_backend", ("vector",), False),
    ("tiles4k", dict(n=1000, depth=6, seed=3),
     "kernel_backend", ("batched", "python"), True),
)


def test_bench_kernel_scale():
    calibration_s = _calibration_loop_seconds()

    points = {}
    for name, kwargs, dimension, backends, warm_round in SCALE_POINTS:
        circuit = clifford_rz_circuit(**kwargs)
        row = {"circuit": dict(kwargs), "dimension": dimension,
               "backends": {}}
        for backend in backends:
            # A fresh layout per backend: RoutingIndex caches live on the
            # layout object, so reusing one would let the second backend
            # coast on the first one's routing work.
            layout = default_layout(circuit)
            tiles = layout.rows * layout.cols
            assert tiles >= 1000, f"{name}: fabric is only {tiles} tiles"
            row["tiles"] = tiles
            row["gates"] = len(circuit.gates)
            config = SimulationConfig(**{dimension: backend})
            walls = []
            for _round in range(2 if warm_round else 1):
                scheduler = SCHEDULER_REGISTRY.create("rescq")
                start = time.perf_counter()
                result = scheduler.run(circuit, layout, config, seed=0)
                walls.append(time.perf_counter() - start)
            cold = walls[0]
            stats = {
                "cold_wall_s": round(cold, 4),
                "sim_cycles": result.total_cycles,
                "cycles_per_sec": round(result.total_cycles / cold, 1),
                "normalised_throughput": round(
                    result.total_cycles / cold * calibration_s, 1),
            }
            if len(walls) > 1:
                stats["warm_wall_s"] = round(walls[1], 4)
            row["backends"][backend] = stats
        points[name] = row

    assert points["gates100k"]["gates"] >= 100_000

    # Merge into the shared report so scale points live next to the fig10
    # numbers (the two benchmarks may run in either order, or alone).
    report = {}
    if os.path.exists(OUTPUT_PATH):
        with open(OUTPUT_PATH, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    report["scale_points"] = points
    report.setdefault("calibration_loop_s", round(calibration_s, 5))
    with open(OUTPUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")

    print()
    print(f"calibration loop: {calibration_s * 1000:.1f} ms")
    for name, row in points.items():
        for backend, stats in row["backends"].items():
            warm = (f", warm {stats['warm_wall_s']:.2f}s"
                    if "warm_wall_s" in stats else "")
            print(f"{name:>10}/{backend:<7}: {stats['cycles_per_sec']:>8.0f} "
                  f"cycles/s  (normalised "
                  f"{stats['normalised_throughput']:.0f}, "
                  f"cold {stats['cold_wall_s']:.2f}s{warm}, "
                  f"{row['tiles']} tiles, {row['gates']} gates)")
    print(f"wrote {OUTPUT_PATH}")

    baseline = None
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)

    if REBASE or baseline is None:
        payload = {
            "machine": "refresh via RESCQ_BENCH_REBASE=1",
            "calibration_loop_s": round(calibration_s, 5),
            "normalised_throughput": {
                f"{name}/{backend}": stats["normalised_throughput"]
                for name, row in points.items()
                for backend, stats in row["backends"].items()},
        }
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"rebased {BASELINE_PATH}")
        return

    failures = []
    for name, row in points.items():
        for backend, stats in row["backends"].items():
            reference = baseline["normalised_throughput"].get(
                f"{name}/{backend}")
            if reference is None:
                continue
            floor = reference * (1.0 - REGRESSION_TOLERANCE)
            if stats["normalised_throughput"] < floor:
                failures.append(
                    f"{name}/{backend}: normalised throughput "
                    f"{stats['normalised_throughput']:.0f} < {floor:.0f} "
                    f"(baseline {reference:.0f} - "
                    f"{REGRESSION_TOLERANCE:.0%})")
    if failures:
        message = "kernel scale regression:\n  " + "\n  ".join(failures)
        if STRICT:
            raise AssertionError(message)
        print(f"[warn] {message}")
